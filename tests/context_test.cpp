// Tests for the execution context layer: the pooled ScratchArena, the
// ScratchVec lease, pram::Context's executor forwarding and phase metrics,
// the unified algorithm registry, and — the headline — that repeated
// maximal_matching calls through a warm Context perform ZERO heap
// allocations in the algorithm body (counted by overriding the global
// allocator below).
#include "pram/context.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "apps/register.h"
#include "core/maximal_matching.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "pram/symbolic_exec.h"
#include "pram/thread_pool.h"

// ---- Counting global allocator. -------------------------------------------
// Single counter bumped by every operator new; tests snapshot it around the
// region under measurement. Counts, never blocks — gtest and the harness
// allocate freely outside the measured regions.

namespace {
std::uint64_t g_news = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  ++g_news;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
// The nothrow forms must be replaced alongside the throwing ones: libstdc++'s
// std::get_temporary_buffer (stable_sort) allocates via new(nothrow) and
// deallocates via plain delete — mixing the default nothrow new with the
// malloc-backed delete below is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace llmp {
namespace {

// ---- ScratchArena / ScratchVec. ------------------------------------------

TEST(ScratchArena, TakeMatchesFreshVectorContents) {
  pram::ScratchArena arena;
  auto a = arena.take<int>(5, 7);
  EXPECT_EQ(a.vec(), std::vector<int>(5, 7));
  auto b = arena.take<std::uint8_t>(3);
  EXPECT_EQ(b.vec(), std::vector<std::uint8_t>(3, 0));
}

TEST(ScratchArena, ReleasedSlabIsReusedWithoutGrowth) {
  pram::ScratchArena arena;
  const int* data = nullptr;
  {
    auto a = arena.take<int>(100, 1);
    data = a.vec().data();
  }
  auto b = arena.take<int>(80, 2);  // fits in the released 100-slab
  EXPECT_EQ(b.vec().data(), data);
  EXPECT_EQ(b.vec(), std::vector<int>(80, 2));
  EXPECT_EQ(arena.takes(), 2u);
  EXPECT_EQ(arena.hits(), 1u);
}

TEST(ScratchArena, BestFitPrefersSmallestFittingSlab) {
  pram::ScratchArena arena;
  const int* small = nullptr;
  const int* large = nullptr;
  {
    auto a = arena.take<int>(64);
    auto b = arena.take<int>(4096);
    small = a.vec().data();
    large = b.vec().data();
  }
  // A 50-element take must come from the 64-slab, not the 4096 one.
  auto c = arena.take<int>(50);
  EXPECT_EQ(c.vec().data(), small);
  auto d = arena.take<int>(1000);  // only the 4096-slab fits
  EXPECT_EQ(d.vec().data(), large);
}

TEST(ScratchArena, PoolsAreKeyedByElementType) {
  pram::ScratchArena arena;
  { auto a = arena.take<std::uint32_t>(256); }
  // A different element type never sees the uint32 slab.
  auto b = arena.take<std::uint64_t>(16);
  EXPECT_EQ(arena.hits(), 0u);
  EXPECT_EQ(b.size(), 16u);
}

TEST(ScratchArena, PassthroughPolicyStillHandsOutCorrectVectors) {
  pram::ScratchArena arena(pram::ScratchArena::Policy::kPassthrough);
  { auto a = arena.take<int>(10, 3); EXPECT_EQ(a[9], 3); }
  auto b = arena.take<int>(10, 4);
  EXPECT_EQ(b.vec(), std::vector<int>(10, 4));
  EXPECT_EQ(arena.hits(), 0u);  // nothing is ever pooled
}

TEST(ScratchVec, MoveTransfersTheLease) {
  pram::ScratchArena arena;
  auto a = arena.take<int>(8, 1);
  const int* data = a.vec().data();
  pram::ScratchVec<int> b = std::move(a);
  EXPECT_EQ(b.vec().data(), data);
  b = arena.take<int>(4, 2);  // releases the 8-slab back to the pool
  auto c = arena.take<int>(8, 3);
  EXPECT_EQ(c.vec().data(), data);
}

TEST(ScratchVec, FreeScratchOnBareExecutorIsPlainHeap) {
  pram::SeqExec seq(4);
  auto v = pram::scratch<int>(seq, 6, 9);
  EXPECT_EQ(v.vec(), std::vector<int>(6, 9));
  EXPECT_EQ(pram::arena_ptr(seq), nullptr);
}

// ---- Context forwarding and metrics. -------------------------------------

TEST(Context, ForwardsStepsProcessorsAndStats) {
  pram::SeqExec seq(16);
  pram::Context ctx(seq);
  EXPECT_EQ(ctx.processors(), 16u);
  std::vector<int> a(32, 0);
  ctx.step(32, [&](std::size_t v, auto&& m) {
    m.wr(a, v, static_cast<int>(v));
  });
  ctx.step(32, 3, [&](std::size_t, auto&&) {});
  EXPECT_EQ(ctx.stats().depth, seq.stats().depth);
  EXPECT_EQ(seq.stats().depth, 2u);
  EXPECT_EQ(a[31], 31);
  EXPECT_EQ(&ctx.backend(), &seq);
}

TEST(Context, RecordsPhasesAndClearsThem) {
  pram::SeqExec seq(4);
  pram::Context ctx(seq);
  std::vector<int> a(8, 0);
  {
    auto span = ctx.phase_span("init");
    ctx.step(8, [&](std::size_t v, auto&& m) { m.wr(a, v, 1); });
  }
  pram::note_phase(ctx, "extra", pram::Stats{});
  ASSERT_EQ(ctx.phases().size(), 2u);
  EXPECT_EQ(ctx.phases()[0].name, "init");
  EXPECT_EQ(ctx.phases()[0].cost.depth, 1u);
  EXPECT_EQ(ctx.phases()[1].name, "extra");
  ctx.clear_phases();
  EXPECT_TRUE(ctx.phases().empty());
}

TEST(Context, NotePhaseIsANoopOnBareExecutors) {
  pram::SeqExec seq(4);
  pram::note_phase(seq, "ignored", pram::Stats{});  // must compile + no-op
  SUCCEED();
}

TEST(Context, AlgorithmsRecordPhasesIntoTheContextSink) {
  const auto list = list::generators::random_list(512, 3);
  pram::SeqExec seq(64);
  pram::Context ctx(seq);
  const auto r = core::maximal_matching(
      ctx, list, {.algorithm = core::Algorithm::kMatch4});
  EXPECT_FALSE(ctx.phases().empty());
  // The context sink mirrors the per-result breakdown.
  ASSERT_EQ(ctx.phases().size(), r.phases.size());
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    EXPECT_EQ(ctx.phases()[i].name, r.phases[i].name);
    EXPECT_EQ(ctx.phases()[i].cost.work, r.phases[i].cost.work);
  }
}

// ---- The registry is the one dispatch surface. ---------------------------

TEST(Registry, TableIsOrderedAndFindable) {
  apps::register_algorithms();
  const auto& reg = core::AlgorithmRegistry::instance();
  const auto rows = reg.prover_entries();
  ASSERT_EQ(rows.size(), 15u);
  EXPECT_EQ(rows.front()->name, "match1");
  EXPECT_EQ(rows.back()->name, "list-prefix");
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[i - 1]->order, rows[i]->order);
  const core::AlgorithmEntry* table = reg.find("match4-table");
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->matching);
  EXPECT_TRUE(table->canonical.partition_with_table);
  EXPECT_FALSE(table->formula.empty());
  EXPECT_EQ(reg.find("no-such-algorithm"), nullptr);
  // The non-prover baselines are listed but not swept.
  ASSERT_NE(reg.find("sequential"), nullptr);
  EXPECT_FALSE(reg.find("sequential")->in_prover);
}

TEST(Registry, EveryEntryRunsOnAllFourBackendsThroughContext) {
  apps::register_algorithms();
  const std::size_t kN = 96;
  const auto list = list::generators::random_list(kN, 5);
  pram::ThreadPool pool(2);
  for (const core::AlgorithmEntry* e :
       core::AlgorithmRegistry::instance().entries()) {
    // The sequential baseline is a host-side greedy walk: it legitimately
    // issues zero PRAM steps, so only the parallel entries assert depth.
    const bool steps_expected = e->name != "sequential";
    {
      pram::SeqExec seq(32);
      pram::Context ctx(seq);
      e->runner->run(ctx, list);
      if (steps_expected) EXPECT_GT(seq.stats().depth, 0u) << e->name;
    }
    {
      pram::ParallelExec par(32, pool);
      pram::Context ctx(par);
      e->runner->run(ctx, list);
      if (steps_expected) EXPECT_GT(par.stats().depth, 0u) << e->name;
    }
    {
      // Under its declared model the dynamic checker must stay clean even
      // though Context's pooled arena recycles buffer addresses run-over-run.
      pram::Machine machine(e->declared, kN,
                            pram::Machine::OnViolation::kRecord);
      pram::Context ctx(machine);
      e->runner->run(ctx, list);
      e->runner->run(ctx, list);  // warm rerun: reused slabs, same verdict
      EXPECT_TRUE(machine.violations().empty()) << e->name;
    }
    {
      pram::SymbolicExec sym(kN);
      pram::Context ctx(sym);
      e->runner->run(ctx, list);
      if (steps_expected)
        EXPECT_FALSE(sym.take_trace().steps.empty()) << e->name;
    }
  }
}

TEST(Registry, BareBackendAndContextProduceIdenticalMatchings) {
  const auto list = list::generators::random_list(777, 11);
  for (core::Algorithm alg :
       {core::Algorithm::kSequential, core::Algorithm::kMatch1,
        core::Algorithm::kMatch2, core::Algorithm::kMatch3,
        core::Algorithm::kMatch4, core::Algorithm::kRandomized}) {
    core::MatchOptions opt;
    opt.algorithm = alg;
    pram::SeqExec bare(128);
    const auto r_bare = core::maximal_matching(bare, list, opt);
    pram::SeqExec backend(128);
    pram::Context ctx(backend);
    const auto r_ctx = core::maximal_matching(ctx, list, opt);
    EXPECT_EQ(r_bare.in_matching, r_ctx.in_matching) << to_string(alg);
    EXPECT_EQ(r_bare.cost.depth, r_ctx.cost.depth) << to_string(alg);
    EXPECT_EQ(r_bare.cost.work, r_ctx.cost.work) << to_string(alg);
    core::verify::check_maximal(list, r_ctx.in_matching);
  }
}

// ---- The zero-allocation guarantee. --------------------------------------

TEST(ContextAllocation, WarmMatchingRunsAllocateNothing) {
  const auto list = list::generators::random_list(4096, 7);
  pram::SeqExec seq(256);
  pram::Context ctx(seq);
  core::MatchResult r;
  // All deterministic algorithms hold the guarantee: Match2's counting
  // sort leases plan-presized buffers from the arena, and Match3's lookup
  // table is served from the process-wide cache after the first build.
  for (core::Algorithm alg :
       {core::Algorithm::kMatch1, core::Algorithm::kMatch2,
        core::Algorithm::kMatch3, core::Algorithm::kMatch4,
        core::Algorithm::kSequential}) {
    core::MatchOptions opt;
    opt.algorithm = alg;
    // Two warm-up runs populate the arena pool and the result capacities.
    core::maximal_matching_into(ctx, list, opt, r);
    ctx.clear_phases();
    core::maximal_matching_into(ctx, list, opt, r);
    ctx.clear_phases();

    const std::uint64_t before = g_news;
    core::maximal_matching_into(ctx, list, opt, r);
    const std::uint64_t after = g_news;
    EXPECT_EQ(after - before, 0u) << core::to_string(alg);
    ctx.clear_phases();
    core::verify::check_maximal(list, r.in_matching);
  }
  EXPECT_GT(ctx.arena().hits(), 0u);
}

TEST(ContextAllocation, WarmTablePathRunsAllocateNothing) {
  // Match4's Lemma 5 partition probes a lookup table; the process-wide
  // table cache makes warm runs allocation-free on this path too.
  const auto list = list::generators::random_list(4096, 7);
  pram::SeqExec seq(256);
  pram::Context ctx(seq);
  core::MatchResult r;
  core::MatchOptions opt;
  opt.algorithm = core::Algorithm::kMatch4;
  opt.partition_with_table = true;
  core::maximal_matching_into(ctx, list, opt, r);
  ctx.clear_phases();
  core::maximal_matching_into(ctx, list, opt, r);
  ctx.clear_phases();

  const std::uint64_t before = g_news;
  core::maximal_matching_into(ctx, list, opt, r);
  EXPECT_EQ(g_news - before, 0u);
  ctx.clear_phases();
  core::verify::check_maximal(list, r.in_matching);
}

}  // namespace
}  // namespace llmp
