// The corruption-tolerance subsystem end to end: the integrity auditor
// names every failure shape it claims to detect, the injector's damage
// is deterministic and detectable, and the self-stabilizing repair
// engine converges from *any* register garbage to an auditor-clean
// maximal matching in O(n) moves — the convergence proof the serve
// layer's healing path (serve_test, chaos_test) builds on.
#include "stabilize/audit.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/maximal_matching.h"
#include "core/sequential.h"
#include "core/verify.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "pram/executor.h"
#include "pram/thread_pool.h"
#include "stabilize/inject.h"
#include "stabilize/repair.h"

namespace llmp::stabilize {
namespace {

std::vector<index_t> chain(std::size_t n) {
  std::vector<index_t> links(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    links[i] = static_cast<index_t>(i + 1);
  links[n - 1] = knil;
  return links;
}

bool has(const CorruptionReport& r, Corruption kind) {
  for (const Finding& f : r.findings)
    if (f.kind == kind) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Auditor: every failure shape detected, clean inputs stay clean.
// ---------------------------------------------------------------------------

TEST(AuditStructure, CleanChainIsClean) {
  const auto lst = list::generators::random_list(256, 7);
  EXPECT_TRUE(audit_structure(lst.next_array()).clean());
}

TEST(AuditStructure, EmptyList) {
  EXPECT_TRUE(has(audit_structure({}), Corruption::kEmptyList));
}

TEST(AuditStructure, SuccessorOutOfRange) {
  auto links = chain(8);
  links[3] = 100;
  const auto r = audit_structure(links);
  EXPECT_TRUE(has(r, Corruption::kSuccessorOutOfRange));
  ASSERT_NE(r.first(), nullptr);
  EXPECT_EQ(r.first()->node, 3u);
  EXPECT_EQ(r.first()->value, 100u);
}

TEST(AuditStructure, SharedSuccessorAndLostTail) {
  auto links = chain(8);
  links[5] = 2;  // 5 now points where 1 points; old chain 6..7 unreachable
  const auto r = audit_structure(links);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(has(r, Corruption::kSharedSuccessor));
}

TEST(AuditStructure, CutChainHasTwoTailsTwoHeads) {
  auto links = chain(8);
  links[3] = knil;
  const auto r = audit_structure(links);
  EXPECT_TRUE(has(r, Corruption::kMultipleTails));
  EXPECT_TRUE(has(r, Corruption::kMultipleHeads));
}

TEST(AuditStructure, PureCycleDetected) {
  auto links = chain(6);
  links[5] = 0;  // no tail at all
  const auto r = audit_structure(links);
  EXPECT_TRUE(has(r, Corruption::kNoTail));
}

TEST(AuditStructure, UnreachableCycleDetected) {
  // 0 -> 1 -> knil, and 2 -> 3 -> 2 off on its own cycle.
  std::vector<index_t> links = {1, knil, 3, 2};
  const auto r = audit_structure(links);
  EXPECT_TRUE(has(r, Corruption::kCycle));
}

TEST(AuditStructure, FindingsAreStructural) {
  auto links = chain(8);
  links[3] = 99;
  EXPECT_TRUE(audit_structure(links).structural());
}

TEST(AuditMatching, CleanMaximalMatchingIsClean) {
  const auto lst = list::generators::random_list(512, 11);
  const auto r = core::sequential_matching(lst);
  const auto report = audit_matching(lst.next_array(), r.in_matching);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_FALSE(report.structural());
}

TEST(AuditMatching, MarkOnTailDetected) {
  const auto lst = list::generators::random_list(64, 3);
  auto marks = core::sequential_matching(lst).in_matching;
  marks[lst.tail()] = 1;
  EXPECT_TRUE(has(audit_matching(lst.next_array(), marks),
                  Corruption::kMarkOnTail));
}

TEST(AuditMatching, OverlapDetected) {
  const auto links = chain(6);
  std::vector<std::uint8_t> marks(6, 0);
  marks[1] = 1;
  marks[2] = 1;  // pointers <1,2> and <2,3> share node 2
  EXPECT_TRUE(has(audit_matching(links, marks),
                  Corruption::kOverlappingMatch));
}

TEST(AuditMatching, NotMaximalDetected) {
  const auto links = chain(6);
  const std::vector<std::uint8_t> marks(6, 0);  // empty matching
  const auto r = audit_matching(links, marks);
  EXPECT_TRUE(has(r, Corruption::kNotMaximal));
}

TEST(AuditMatchPointers, DetectsAllThreeShapes) {
  const auto links = chain(8);
  std::vector<index_t> m(8, knil);
  m[0] = 99;          // out of range
  m[2] = 5;           // non-adjacent (links[2]==3, links[5]==6)
  m[6] = 7;           // one-sided: m[7] stays knil
  const auto r = audit_match_pointers(links, m);
  EXPECT_TRUE(has(r, Corruption::kMatchOutOfRange));
  EXPECT_TRUE(has(r, Corruption::kNonAdjacentMatch));
  EXPECT_TRUE(has(r, Corruption::kAsymmetricMatch));
}

TEST(AuditRanks, DetectsBrokenAndOutOfRange) {
  const auto links = chain(5);
  std::vector<std::uint64_t> ranks = {4, 3, 2, 1, 0};
  EXPECT_TRUE(audit_ranks(links, ranks).clean());
  ranks[2] = 7;  // >= n
  auto r = audit_ranks(links, ranks);
  EXPECT_TRUE(has(r, Corruption::kRankOutOfRange));
  ranks[2] = 3;  // in range but != ranks[3] + 1
  r = audit_ranks(links, ranks);
  EXPECT_TRUE(has(r, Corruption::kRankBroken));
}

// ---------------------------------------------------------------------------
// Injector: deterministic, and detectably corrupt where promised.
// ---------------------------------------------------------------------------

TEST(Inject, FlipLinksIsDeterministic) {
  const auto lst = list::generators::random_list(1024, 5);
  auto a = lst.next_array();
  auto b = lst.next_array();
  EXPECT_EQ(flip_links(a, /*seed=*/42, 3), 3u);
  EXPECT_EQ(flip_links(b, /*seed=*/42, 3), 3u);
  EXPECT_EQ(a, b);
  auto c = lst.next_array();
  flip_links(c, /*seed=*/43, 3);
  EXPECT_NE(a, c);
}

TEST(Inject, SingleFlipAlwaysDetected) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto lst = list::generators::random_list(257, seed + 100);
    auto links = lst.next_array();
    ASSERT_EQ(flip_links(links, seed, 1), 1u);
    EXPECT_FALSE(audit_structure(links).clean()) << "seed " << seed;
  }
}

TEST(Inject, SingleCutAlwaysDetected) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto lst = list::generators::random_list(257, seed + 200);
    auto links = lst.next_array();
    ASSERT_EQ(truncate_links(links, seed, 1), 1u);
    const auto r = audit_structure(links);
    EXPECT_TRUE(has(r, Corruption::kMultipleTails)) << "seed " << seed;
  }
}

TEST(Inject, BrokenMatchingAlwaysDetected) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto lst = list::generators::random_list(257, seed + 300);
    auto marks = core::sequential_matching(lst).in_matching;
    const std::size_t edits =
        break_matching(lst.next_array(), marks, seed, 1 + seed % 5);
    ASSERT_GE(edits, 1u);
    EXPECT_FALSE(audit_matching(lst.next_array(), marks).clean())
        << "seed " << seed;
  }
}

TEST(Inject, MaybeWrappersAreNoOpsWhenDisarmed) {
  const auto lst = list::generators::random_list(64, 9);
  auto links = lst.next_array();
  auto marks = core::sequential_matching(lst).in_matching;
  EXPECT_EQ(maybe_flip_links(links, 1), 0u);
  EXPECT_EQ(maybe_truncate_links(links, 1), 0u);
  EXPECT_EQ(maybe_break_matching(links, marks, 1), 0u);
  EXPECT_EQ(links, lst.next_array());
  EXPECT_TRUE(audit_matching(links, marks).clean());
}

// ---------------------------------------------------------------------------
// Repair: convergence from arbitrary garbage, with the O(n) move bound.
// ---------------------------------------------------------------------------

/// Repairs `m` over `links` and asserts the full postcondition: the
/// registers are auditor-clean, the bitmap form is a valid maximal
/// matching by both the auditor and the throwing oracles, and the move
/// bound holds. Returns stats for determinism checks.
template <class Exec>
RepairStats repair_and_check(Exec& exec, const list::LinkedList& lst,
                             std::vector<index_t>& m) {
  const std::vector<index_t>& links = lst.next_array();
  const RepairStats stats = repair_match_registers(exec, links, m);
  const auto reg_report = audit_match_pointers(links, m);
  EXPECT_TRUE(reg_report.clean()) << reg_report.summary();
  std::vector<std::uint8_t> marks;
  registers_to_bits(exec, links, m, marks);
  const auto bit_report = audit_matching(links, marks);
  EXPECT_TRUE(bit_report.clean()) << bit_report.summary();
  core::verify::check_matching(lst, marks);
  core::verify::check_maximal(lst, marks);
  // The bound the header comment promises: <= ~3n moves, pinned at
  // 4n + 8 to leave slack for the conversion-free small cases.
  EXPECT_LE(stats.moves, 4 * lst.size() + 8);
  EXPECT_LE(stats.iterations, 8u);
  return stats;
}

TEST(Repair, FromEmptyRegistersBuildsMaximalMatching) {
  pram::SeqExec exec(64);
  const auto lst = list::generators::random_list(4096, 21);
  std::vector<index_t> m(lst.size(), knil);
  const RepairStats stats = repair_and_check(exec, lst, m);
  EXPECT_GT(stats.moves, 0u);
}

TEST(Repair, CleanMatchingIsInvariant) {
  pram::SeqExec exec(64);
  const auto lst = list::generators::random_list(4096, 22);
  const auto marks = core::sequential_matching(lst).in_matching;
  std::vector<index_t> m;
  bits_to_registers(lst.next_array(), marks, m);
  const std::vector<index_t> before = m;
  const RepairStats stats = repair_match_registers(exec, lst.next_array(), m);
  EXPECT_EQ(m, before);  // married pairs are invariant
  EXPECT_EQ(stats.moves, 0u);
}

TEST(Repair, ConvergesFromScrambledRegistersAcrossSizes) {
  pram::SeqExec exec(256);
  for (const std::size_t n : {1ul, 2ul, 3ul, 17ul, 1024ul, 100000ul}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto lst = list::generators::random_list(n, 400 + seed);
      std::vector<index_t> m(n, knil);
      bits_to_registers(lst.next_array(),
                        core::sequential_matching(lst).in_matching, m);
      scramble_match_pointers(lst.next_array(), m, seed, n / 2 + 1);
      repair_and_check(exec, lst, m);
    }
  }
}

TEST(Repair, DeterministicFromInjectorSeed) {
  const auto lst = list::generators::random_list(50000, 77);
  auto run = [&](std::uint64_t seed) {
    pram::SeqExec exec(128);
    std::vector<index_t> m(lst.size(), knil);
    bits_to_registers(lst.next_array(),
                      core::sequential_matching(lst).in_matching, m);
    scramble_match_pointers(lst.next_array(), m, seed, 1000);
    const RepairStats stats = repair_and_check(exec, lst, m);
    return std::make_pair(m, stats.moves);
  };
  const auto [m1, moves1] = run(9);
  const auto [m2, moves2] = run(9);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(moves1, moves2);
}

TEST(Repair, ParallelExecMatchesSeqExec) {
  const auto lst = list::generators::random_list(30000, 88);
  std::vector<index_t> seq_m(lst.size(), knil);
  bits_to_registers(lst.next_array(),
                    core::sequential_matching(lst).in_matching, seq_m);
  scramble_match_pointers(lst.next_array(), seq_m, 5, 2000);
  std::vector<index_t> par_m = seq_m;

  pram::SeqExec seq(128);
  const RepairStats seq_stats = repair_and_check(seq, lst, seq_m);
  pram::ThreadPool pool(4);
  pram::ParallelExec par(128, pool, /*threshold=*/1024);
  const RepairStats par_stats = repair_and_check(par, lst, par_m);
  EXPECT_EQ(seq_m, par_m);
  EXPECT_EQ(seq_stats.moves, par_stats.moves);
  EXPECT_EQ(seq_stats.iterations, par_stats.iterations);
}

TEST(Repair, BitmapEntryPointHealsInjectorDamage) {
  pram::SeqExec exec(128);
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto lst = list::generators::random_list(2048, 500 + seed);
    auto marks = core::sequential_matching(lst).in_matching;
    ASSERT_GE(break_matching(lst.next_array(), marks, seed, 1 + seed % 4),
              1u);
    ASSERT_FALSE(audit_matching(lst.next_array(), marks).clean());
    // Note: zero moves is legal here — a mark beyond the tail heals in
    // the bitmap->register conversion before the repair loop ever runs.
    repair_matching(exec, lst.next_array(), marks);
    const auto report = audit_matching(lst.next_array(), marks);
    EXPECT_TRUE(report.clean()) << report.summary();
    core::verify::check_matching(lst, marks);
    core::verify::check_maximal(lst, marks);
  }
}

}  // namespace
}  // namespace llmp::stabilize
