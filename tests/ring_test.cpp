// Tests for maximal matching on rings (circular lists), plus targeted
// unit tests of the cut stage on crafted label patterns and the
// p-invariance property of the cost-model executors.
#include "core/ring.h"

#include <gtest/gtest.h>

#include "core/cut.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"

namespace llmp::core {
namespace {

class RingSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingSizes, EveryAlgorithmMaximalOnRing) {
  const std::size_t n = GetParam();
  const auto ring = random_ring(n, 3 * n + 1);
  for (auto alg : {Algorithm::kMatch1, Algorithm::kMatch2,
                   Algorithm::kMatch3, Algorithm::kMatch4}) {
    pram::SeqExec exec(32);
    MatchOptions opt;
    opt.algorithm = alg;
    const auto r = ring_matching(exec, ring, opt);
    check_ring_matching(ring, r.in_matching);
    EXPECT_EQ(r.edges, verify::matching_size(r.in_matching));
    // A maximal matching on an n-cycle has between ceil(n/3) and
    // floor(n/2) edges.
    if (n >= 3) {
      EXPECT_GE(3 * r.edges, n) << to_string(alg);
      EXPECT_LE(2 * r.edges, n) << to_string(alg);
    }
  }
}

TEST_P(RingSizes, SeamIsNeverLeftAddable) {
  const std::size_t n = GetParam();
  if (n < 3) GTEST_SKIP();
  const auto ring = random_ring(n, n + 5);
  pram::SeqExec exec(16);
  const auto r = ring_matching(exec, ring);
  // The seam pointer is <0, ring[0]>; if unchosen, an endpoint is covered.
  if (!r.in_matching[0]) {
    bool covered = r.in_matching[ring[0]] != 0;
    for (index_t v = 0; v < n && !covered; ++v)
      if (ring[v] == 0 && r.in_matching[v]) covered = true;
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 9,
                                                        100, 2048),
                         ::testing::PrintToStringParamName());

TEST(Ring, RejectsNonRings) {
  using V = std::vector<index_t>;
  EXPECT_THROW(check_ring(V{0, 1}), check_error);        // two self-loops
  EXPECT_THROW(check_ring(V{1, 0, 3, 2}), check_error);  // two 2-cycles
  EXPECT_THROW(check_ring(V{1, 1, 0}), check_error);     // double pred
  EXPECT_THROW(check_ring(V{5}), check_error);           // out of range
  EXPECT_NO_THROW(check_ring(V{1, 2, 0}));
}

TEST(Ring, OracleRejectsBadMatchings) {
  const std::vector<index_t> ring{1, 2, 3, 4, 5, 0};
  std::vector<std::uint8_t> adjacent{1, 1, 0, 0, 0, 0};
  EXPECT_THROW(check_ring_matching(ring, adjacent), check_error);
  std::vector<std::uint8_t> sparse{1, 0, 0, 0, 0, 0};  // <3,4>,<4,5> free
  EXPECT_THROW(check_ring_matching(ring, sparse), check_error);
  std::vector<std::uint8_t> good{1, 0, 1, 0, 1, 0};
  EXPECT_NO_THROW(check_ring_matching(ring, good));
}

// ---- targeted cut-stage unit tests ---------------------------------------

/// Build a path list whose pointer labels follow `pattern` (cyclically
/// extended); pattern must have adjacent-distinct entries including the
/// wrap between repeats.
void run_cut_pattern(const std::vector<label_t>& pattern, std::size_t n,
                     label_t alphabet) {
  const auto lst = list::generators::identity_list(n);
  std::vector<label_t> plabel(n, 0);
  for (index_t v = 0; v < n; ++v) plabel[v] = pattern[v % pattern.size()];
  verify::check_pointer_partition(lst, plabel);
  pram::SeqExec exec(8);
  const auto pred = lst.predecessors();
  std::vector<std::uint8_t> matching;
  const CutStats stats =
      cut_and_walk(exec, lst, pred, plabel, alphabet, matching);
  verify::check_matching(lst, matching);
  verify::check_maximal(lst, matching);
  verify::check_one_of_three(lst, matching);
  EXPECT_LE(stats.max_run, 2 * static_cast<std::size_t>(alphabet) - 1);
}

TEST(CutPatterns, AlternatingLabelsMakeLongRuns) {
  run_cut_pattern({0, 1}, 101, 2);  // no interior local minima at all
}

TEST(CutPatterns, StrictlyIncreasingThenWrap) {
  run_cut_pattern({0, 1, 2, 3, 4, 5}, 100, 6);  // minima at every wrap
}

TEST(CutPatterns, SawtoothMaximizesCuts) {
  run_cut_pattern({0, 5, 1, 4, 2, 3}, 120, 6);
}

TEST(CutPatterns, DescendingRuns) {
  run_cut_pattern({5, 4, 3, 2, 1, 0}, 90, 6);
}

// ---- cost-model p-invariance ----------------------------------------------

TEST(CostModel, MatchingIndependentOfProcessorBudget) {
  // p only scales time_p; the computed matching and the depth/work columns
  // must not change with it.
  const auto lst = list::generators::random_list(3000, 8);
  for (auto alg : {Algorithm::kMatch1, Algorithm::kMatch2,
                   Algorithm::kMatch3, Algorithm::kMatch4}) {
    MatchOptions opt;
    opt.algorithm = alg;
    pram::SeqExec e1(1), e2(4096);
    const auto a = maximal_matching(e1, lst, opt);
    const auto b = maximal_matching(e2, lst, opt);
    EXPECT_EQ(a.in_matching, b.in_matching) << to_string(alg);
    EXPECT_GE(a.cost.time_p, b.cost.time_p) << to_string(alg);
    if (alg != Algorithm::kMatch2) {
      // Match2's sort legitimately restructures with p (its histogram
      // blocks default to the processor budget); the others must have
      // p-independent step structure. The matching is identical either
      // way: counting sort is stable, so block count cannot reorder it.
      EXPECT_EQ(a.cost.depth, b.cost.depth) << to_string(alg);
      EXPECT_EQ(a.cost.work, b.cost.work) << to_string(alg);
    }
  }
}

}  // namespace
}  // namespace llmp::core
