// Tests for the matching-partition lookup tables (Match3 step 4 and the
// appendix's guess-and-verify construction) and the gather machinery.
#include "core/lookup_table.h"

#include <gtest/gtest.h>

#include "core/gather.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "support/rng.h"

namespace llmp::core {
namespace {

TEST(LookupTable, CollapseEqualsIteratedF) {
  // collapse(a_1..a_w) must equal f^(w): the pairwise-level pyramid.
  const BitRule rule = BitRule::kMostSignificant;
  rng::Xoshiro256 gen(1);
  for (int w : {1, 2, 3, 4, 7}) {
    for (int t = 0; t < 200; ++t) {
      std::vector<label_t> a(static_cast<std::size_t>(w));
      for (auto& x : a) x = gen.below(16);
      // Manual recursion: f^(w)(a1..aw) = f(f^(w-1)(a1..), f^(w-1)(a2..)).
      std::function<label_t(std::size_t, std::size_t)> fk =
          [&](std::size_t lo, std::size_t len) -> label_t {
        if (len == 1) return a[lo];
        return safe_partition_value(fk(lo, len - 1), fk(lo + 1, len - 1),
                                    rule);
      };
      EXPECT_EQ(MatchingLookupTable::collapse(a, rule),
                fk(0, static_cast<std::size_t>(w)));
    }
  }
}

class TableRule : public ::testing::TestWithParam<BitRule> {};

TEST_P(TableRule, TableValuesMatchDirectCollapse) {
  const BitRule rule = GetParam();
  MatchingLookupTable table(/*component_bits=*/3, /*tuple_width=*/4, rule);
  EXPECT_EQ(table.cells(), std::size_t{1} << 12);
  rng::Xoshiro256 gen(2);
  for (int t = 0; t < 3000; ++t) {
    const label_t key = gen.below(table.cells());
    EXPECT_EQ(table.value(key),
              MatchingLookupTable::collapse(table.components(key), rule));
  }
}

TEST_P(TableRule, ValidKeysCollapseToFixedPointAlphabet) {
  const BitRule rule = GetParam();
  MatchingLookupTable table(3, 4, rule);
  EXPECT_LE(table.final_bound(), kFixedPointBound);
}

TEST_P(TableRule, TableIsAMatchingPartitionFunction) {
  // T(a1..aw) != T(a2..aw+1) for keys arising from adjacent-distinct
  // label sequences — the property Match3 step 4 relies on.
  const BitRule rule = GetParam();
  const int b = 3, w = 4;
  MatchingLookupTable table(b, w, rule);
  rng::Xoshiro256 gen(3);
  for (int t = 0; t < 5000; ++t) {
    // Random adjacent-distinct sequence of w+1 components.
    std::vector<label_t> seq(w + 1);
    seq[0] = gen.below(8);
    for (int i = 1; i <= w; ++i) {
      label_t x;
      do x = gen.below(8); while (x == seq[i - 1]);
      seq[static_cast<std::size_t>(i)] = x;
    }
    auto key_of = [&](int lo) {
      label_t key = 0;
      for (int i = 0; i < w; ++i)
        key = (key << b) | seq[static_cast<std::size_t>(lo + i)];
      return key;
    };
    ASSERT_NE(table.value(key_of(0)), table.value(key_of(1)))
        << "seq " << seq[0] << seq[1] << seq[2] << seq[3] << seq[4];
  }
}

TEST_P(TableRule, PartialCollapseUsesOnlyLeadingComponents) {
  const BitRule rule = GetParam();
  MatchingLookupTable table(3, 4, rule, /*collapse_width=*/2);
  rng::Xoshiro256 gen(4);
  for (int t = 0; t < 1000; ++t) {
    const label_t key = gen.below(table.cells());
    auto comp = table.components(key);
    std::vector<label_t> lead(comp.begin(), comp.begin() + 2);
    EXPECT_EQ(table.value(key),
              MatchingLookupTable::collapse(lead, rule));
  }
}

INSTANTIATE_TEST_SUITE_P(Rules, TableRule,
                         ::testing::Values(BitRule::kMostSignificant,
                                           BitRule::kLeastSignificant),
                         [](const auto& info) {
                           return info.param == BitRule::kMostSignificant
                                      ? "MSB"
                                      : "LSB";
                         });

TEST(LookupTable, RejectsOversizedKeys) {
  EXPECT_THROW(MatchingLookupTable(4, 8, BitRule::kMostSignificant),
               check_error);  // 32 key bits > 26
}

TEST(VerifyPyramid, AcceptsConsistentTables) {
  MatchingLookupTable table(3, 4, BitRule::kMostSignificant);
  pram::SeqExec exec(8);
  rng::Xoshiro256 gen(5);
  for (int t = 0; t < 50; ++t)
    EXPECT_TRUE(verify_pyramid(exec, table, gen.below(table.cells())));
}

TEST(VerifyPyramid, DepthIsLogarithmicInWidth) {
  // The appendix's claim: verification fans in w(w+1)/2 cell verdicts in
  // O(log w) steps (plus the single parallel check step).
  MatchingLookupTable table(3, 8, BitRule::kLeastSignificant);
  pram::SeqExec exec(64);
  verify_pyramid(exec, table, 0xABCDEF);  // < 2^24 table cells
  // cells = 7+6+...+1 = 28 guesses; 1 check step + ceil(log2 28) = 5.
  EXPECT_LE(exec.stats().depth, 1u + 5u);
}

TEST(VerifyPyramid, ErewLegalOnTheMachine) {
  MatchingLookupTable table(3, 4, BitRule::kMostSignificant);
  pram::Machine m(pram::Mode::kEREW, 8);
  EXPECT_TRUE(verify_pyramid(m, table, 0xABC));
}

TEST(Gather, GatherPlusLookupEqualsIteratedRelabel) {
  // Match3's acceleration must be *extensionally* equal to running the
  // plain relabel loop for the same number of rounds.
  const BitRule rule = BitRule::kMostSignificant;
  for (std::size_t n : {2u, 3u, 50u, 4096u}) {
    const auto list = list::generators::random_list(n, n + 1);
    const int crunch = 3;  // labels < 8 → 3 bits
    const int gather_rounds = 2;
    const int w = 4;

    pram::SeqExec fast(8);
    std::vector<label_t> accel;
    init_address_labels(fast, n, accel);
    relabel_rounds(fast, list, accel, crunch, rule);
    const int b = itlog::ceil_log2(bound_after_rounds(n, crunch));
    MatchingLookupTable table(b, w, rule);
    gather_labels(fast, list, accel, b, gather_rounds);
    lookup_labels(fast, table, accel);

    pram::SeqExec slow(8);
    std::vector<label_t> plain;
    init_address_labels(slow, n, plain);
    relabel_rounds(slow, list, plain, crunch + (w - 1), rule);

    EXPECT_EQ(accel, plain) << "n=" << n;
  }
}

TEST(Gather, AcceleratedPathIsShallower) {
  const std::size_t n = 1 << 16;
  const auto list = list::generators::random_list(n, 9);
  const BitRule rule = BitRule::kMostSignificant;

  pram::SeqExec fast(256);
  std::vector<label_t> a;
  init_address_labels(fast, n, a);
  relabel_rounds(fast, list, a, 3, rule);
  MatchingLookupTable table(3, 4, rule);
  gather_labels(fast, list, a, 3, 2);
  lookup_labels(fast, table, a);
  const auto fast_depth = fast.stats().depth;

  pram::SeqExec slow(256);
  std::vector<label_t> blabels;
  init_address_labels(slow, n, blabels);
  relabel_rounds(slow, list, blabels, 3 + 3, rule);
  EXPECT_LE(fast_depth, slow.stats().depth + 1);
}

}  // namespace
}  // namespace llmp::core
