// Randomized cross-checking sweep ("fuzz"): many seeds × random sizes ×
// random shapes; every algorithm (CREW and EREW variants) must produce a
// valid maximal matching, deterministic algorithms must be
// backend-independent, and the applications must agree with their
// sequential oracles. This is the safety net the structured TEST_P grids
// cannot provide: irregular sizes and shape/seed combinations nobody
// thought to enumerate.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/independent_set.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "core/maximal_matching.h"
#include "core/sequential.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "stabilize/audit.h"
#include "stabilize/inject.h"
#include "stabilize/repair.h"
#include "support/rng.h"

namespace llmp {
namespace {

list::LinkedList random_shape(rng::Xoshiro256& gen, std::size_t n) {
  switch (gen.below(5)) {
    case 0: return list::generators::identity_list(n);
    case 1: return list::generators::reverse_list(n);
    case 2: {
      std::size_t stride = 1 + gen.below(n);
      while (std::gcd(stride, n) != 1) ++stride;
      return list::generators::strided_list(n, stride);
    }
    case 3:
      return list::generators::blocked_list(n, 1 + gen.below(64),
                                            gen.next());
    default:
      return list::generators::random_list(n, gen.next());
  }
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, EveryAlgorithmEveryList) {
  rng::Xoshiro256 gen(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 1 + gen.below(3000);
    const auto lst = random_shape(gen, n);
    const std::size_t p = 1 + gen.below(512);
    for (auto alg : {core::Algorithm::kMatch1, core::Algorithm::kMatch2,
                     core::Algorithm::kMatch3, core::Algorithm::kMatch4,
                     core::Algorithm::kRandomized}) {
      pram::SeqExec exec(p);
      core::MatchOptions opt;
      opt.algorithm = alg;
      opt.i_parameter = 1 + static_cast<int>(gen.below(5));
      opt.partition_with_table = gen.coin();
      opt.rule = gen.coin() ? core::BitRule::kMostSignificant
                            : core::BitRule::kLeastSignificant;
      opt.seed = gen.next();
      const auto r = core::maximal_matching(exec, lst, opt);
      ASSERT_NO_THROW(core::verify::check_matching(lst, r.in_matching))
          << core::to_string(alg) << " n=" << n << " p=" << p;
      ASSERT_NO_THROW(core::verify::check_maximal(lst, r.in_matching))
          << core::to_string(alg) << " n=" << n << " p=" << p;
    }
  }
}

TEST_P(FuzzSweep, ErewVariantsMatchCrew) {
  rng::Xoshiro256 gen(GetParam() * 0xBF58476D1CE4E5B9ULL + 3);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 1 + gen.below(2000);
    const auto lst = random_shape(gen, n);
    {
      pram::SeqExec a(64), b(64);
      core::Match1Options crew, erew;
      erew.erew = true;
      ASSERT_EQ(core::match1(a, lst, crew).in_matching,
                core::match1(b, lst, erew).in_matching)
          << "Match1 n=" << n;
    }
    {
      pram::SeqExec a(64), b(64);
      core::Match4Options crew, erew;
      erew.erew = true;
      ASSERT_EQ(core::match4(a, lst, crew).in_matching,
                core::match4(b, lst, erew).in_matching)
          << "Match4 n=" << n;
    }
  }
}

TEST_P(FuzzSweep, ApplicationsAgainstOracles) {
  rng::Xoshiro256 gen(GetParam() * 0x94D049BB133111EBULL + 7);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 1 + gen.below(2500);
    const auto lst = random_shape(gen, n);
    pram::SeqExec e1(64), e2(64), e3(64), e4(64);
    const auto col = apps::three_coloring(e1, lst);
    ASSERT_NO_THROW(apps::check_coloring(lst, col.colors, 3)) << n;
    const auto mis = apps::independent_set(e2, lst);
    ASSERT_NO_THROW(apps::check_independent_set(lst, mis.in_set)) << n;
    const auto oracle = apps::sequential_ranking(lst);
    ASSERT_EQ(apps::wyllie_ranking(e3, lst).rank, oracle) << n;
    ASSERT_EQ(apps::contraction_ranking(e4, lst).rank, oracle) << n;
  }
}

// Corruption round-trip: damage a correct result with the injector, the
// auditor must notice; repair it, the auditor must come back clean AND
// the result must be a genuinely maximal matching per the throwing
// oracles and the sequential baseline's invariants. Randomized shapes,
// sizes and damage counts — the structured tests in stabilize_test.cpp
// pin the exact bounds, this sweeps the input space.
TEST_P(FuzzSweep, CorruptionRoundTrip) {
  rng::Xoshiro256 gen(GetParam() * 0xD6E8FEB86659FD93ULL + 11);
  pram::SeqExec exec(256);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 2 + gen.below(3000);
    const auto lst = random_shape(gen, n);
    const std::vector<index_t>& links = lst.next_array();

    // Matching damage: detect, repair, re-audit clean + maximal.
    auto marks = core::sequential_matching(lst).in_matching;
    const std::uint64_t seed = gen.next();
    if (stabilize::break_matching(links, marks, seed, 1 + gen.below(6)) >
        0) {
      ASSERT_FALSE(stabilize::audit_matching(links, marks).clean())
          << "n=" << n << " seed=" << seed;
      stabilize::repair_matching(exec, links, marks);
      const auto report = stabilize::audit_matching(links, marks);
      ASSERT_TRUE(report.clean())
          << report.summary() << " n=" << n << " seed=" << seed;
      ASSERT_NO_THROW(core::verify::check_matching(lst, marks)) << n;
      ASSERT_NO_THROW(core::verify::check_maximal(lst, marks)) << n;
      // Same size class as the sequential baseline: both are maximal
      // matchings on a path, so within a factor two of each other.
      const std::size_t repaired = core::verify::matching_size(marks);
      const std::size_t oracle =
          core::sequential_matching(lst).edges;
      ASSERT_LE(oracle, 2 * repaired + 1) << n;
      ASSERT_LE(repaired, oracle * 2 + 1) << n;
    }

    // Structural damage: a single edit is always detected, and the
    // report agrees with LinkedList::validate's verdict.
    auto damaged = links;
    if (gen.coin()) {
      ASSERT_EQ(stabilize::flip_links(damaged, seed, 1), 1u);
    } else {
      ASSERT_EQ(stabilize::truncate_links(damaged, seed, 1), 1u);
    }
    const auto sreport = stabilize::audit_structure(damaged);
    ASSERT_FALSE(sreport.clean()) << "n=" << n << " seed=" << seed;
    ASSERT_TRUE(sreport.structural());
    ASSERT_FALSE(list::LinkedList::validate(damaged).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6,
                                                          7, 8),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace llmp
