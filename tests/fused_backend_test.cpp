// Differential suite for the thread backend's raw-speed fast paths.
//
// The fused sweeps, software prefetch, SIMD label crunching, and the
// adaptive parallel threshold are pure wall-clock optimizations: they must
// never move a result bit or a cost-surface counter. This file enforces
// that by running EVERY registered algorithm
//
//   * on pram::Machine — the tracked PRAM referee, which has no sweep and
//     therefore always executes the legacy per-element step bodies — and
//   * on pram::ParallelExec in each fast-path configuration (fused with
//     runtime-dispatched SIMD, fused with SIMD forced scalar, fused with
//     prefetch disabled, and legacy mode with fusion switched off),
//
// across sizes straddling the inline/pooled threshold, and asserting
// bit-identical matchings, edge counts, auxiliary counters, cost surfaces
// (depth/time_p/work — reads/writes are tracked by the Machine only), and
// phase breakdowns (names and deltas; wall_ms is machine noise and is
// exempt). Run under LLMP_SIMD=off in CI to pin the portable scalar path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/register.h"
#include "core/registry.h"
#include "list/generators.h"
#include "pram/context.h"
#include "pram/executor.h"
#include "pram/machine.h"
#include "pram/sweep.h"
#include "pram/thread_pool.h"

namespace llmp {
namespace {

// The trait must expose sweep on the fast executors and their Contexts,
// and hide it from the referee — otherwise the Machine would silently
// skip its tracked-memory audit on fused code.
static_assert(pram::has_sweep_v<pram::SeqExec>);
static_assert(pram::has_sweep_v<pram::ParallelExec>);
static_assert(pram::has_sweep_v<pram::Context<pram::SeqExec>>);
static_assert(pram::has_sweep_v<pram::Context<pram::ParallelExec>>);
static_assert(!pram::has_sweep_v<pram::Machine>);
static_assert(!pram::has_sweep_v<pram::Context<pram::Machine>>);

enum class FastMode { kLegacy, kFusedScalar, kFusedNoPrefetch, kFusedFull };

const char* mode_name(FastMode m) {
  switch (m) {
    case FastMode::kLegacy: return "legacy";
    case FastMode::kFusedScalar: return "fused-scalar";
    case FastMode::kFusedNoPrefetch: return "fused-noprefetch";
    case FastMode::kFusedFull: return "fused-full";
  }
  return "?";
}

/// Applies one fast-path configuration to the process-wide tuning knobs;
/// restores the previous configuration (and SIMD level) on destruction.
class TuningGuard {
 public:
  explicit TuningGuard(FastMode mode)
      : saved_(pram::tuning()), level_(pram::simd::active_level()) {
    pram::SweepTuning& t = pram::tuning();
    switch (mode) {
      case FastMode::kLegacy:
        t.fused = false;
        break;
      case FastMode::kFusedScalar:
        t.fused = true;
        pram::simd::set_level(pram::simd::Level::kScalar);
        break;
      case FastMode::kFusedNoPrefetch:
        t.fused = true;
        t.prefetch.distance = 0;
        break;
      case FastMode::kFusedFull:
        t.fused = true;
        break;
    }
  }
  ~TuningGuard() {
    pram::tuning() = saved_;
    pram::simd::set_level(level_);
  }

 private:
  pram::SweepTuning saved_;
  pram::simd::Level level_;
};

/// One run of a registry entry: the matching result (empty for schedule
/// entries), the context's cost delta, and its phase breakdown.
struct BackendRun {
  core::MatchResult result;
  bool has_result = false;
  pram::Stats cost;
  pram::PhaseBreakdown phases;
};

template <class Exec>
BackendRun run_entry(Exec& exec, const core::AlgorithmEntry& entry,
              const list::LinkedList& list) {
  pram::Context ctx(exec);
  BackendRun run;
  const pram::Stats start = ctx.stats();
  if (entry.matching) {
    core::AlgorithmRegistry::instance().match_dispatcher().run(
        ctx, list, entry.canonical, run.result);
    run.has_result = true;
  } else {
    entry.runner->run(ctx, list);
  }
  run.cost = ctx.stats() - start;
  run.phases = ctx.phases();
  return run;
}

void expect_same_model(const BackendRun& a, const BackendRun& b, const std::string& what) {
  // depth/time_p/work only: reads/writes are Machine-tracked and stay 0 on
  // the fast executors.
  EXPECT_EQ(a.cost.depth, b.cost.depth) << what;
  EXPECT_EQ(a.cost.time_p, b.cost.time_p) << what;
  EXPECT_EQ(a.cost.work, b.cost.work) << what;
  ASSERT_EQ(a.phases.size(), b.phases.size()) << what;
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const std::string tag = what + " phase '" + a.phases[i].name + "'";
    EXPECT_EQ(a.phases[i].name, b.phases[i].name) << tag;
    EXPECT_EQ(a.phases[i].cost.depth, b.phases[i].cost.depth) << tag;
    EXPECT_EQ(a.phases[i].cost.time_p, b.phases[i].cost.time_p) << tag;
    EXPECT_EQ(a.phases[i].cost.work, b.phases[i].cost.work) << tag;
  }
  ASSERT_EQ(a.has_result, b.has_result) << what;
  if (!a.has_result) return;
  const core::MatchResult& x = a.result;
  const core::MatchResult& y = b.result;
  EXPECT_EQ(x.in_matching, y.in_matching) << what;
  EXPECT_EQ(x.edges, y.edges) << what;
  EXPECT_EQ(x.relabel_rounds, y.relabel_rounds) << what;
  EXPECT_EQ(x.gather_rounds, y.gather_rounds) << what;
  EXPECT_EQ(x.table_cells, y.table_cells) << what;
  EXPECT_EQ(x.partition_sets, y.partition_sets) << what;
  EXPECT_EQ(x.cut.cuts, y.cut.cuts) << what;
  EXPECT_EQ(x.cut.max_run, y.cut.max_run) << what;
  EXPECT_EQ(x.cost.depth, y.cost.depth) << what;
  EXPECT_EQ(x.cost.time_p, y.cost.time_p) << what;
  EXPECT_EQ(x.cost.work, y.cost.work) << what;
}

std::vector<const core::AlgorithmEntry*> all_entries() {
  apps::register_algorithms();
  return core::AlgorithmRegistry::instance().entries();
}

TEST(FusedBackend, EveryAlgorithmBitIdenticalAcrossFastModes) {
  // Pin the inline/pooled seam at 64 so small lists straddle it; sizes
  // below, at, and above exercise both dispatch shapes of every sweep.
  constexpr std::size_t kThreshold = 64;
  pram::ThreadPool pool(2);
  for (std::size_t n : {5u, 63u, 64u, 65u, 257u, 1000u}) {
    const auto list = list::generators::random_list(n, 17 + n);
    for (const core::AlgorithmEntry* entry : all_entries()) {
      BackendRun reference;
      {
        TuningGuard guard(FastMode::kLegacy);
        pram::ParallelExec exec(64, pool, kThreshold);
        reference = run_entry(exec, *entry, list);
      }
      for (FastMode mode : {FastMode::kFusedScalar,
                            FastMode::kFusedNoPrefetch,
                            FastMode::kFusedFull}) {
        TuningGuard guard(mode);
        pram::ParallelExec exec(64, pool, kThreshold);
        const BackendRun run = run_entry(exec, *entry, list);
        expect_same_model(reference, run,
                          entry->name + " n=" + std::to_string(n) + " " +
                              mode_name(mode));
      }
    }
  }
}

TEST(FusedBackend, FusedThreadBackendMatchesMachineReferee) {
  // The tracked referee executes the legacy per-element bodies (it has no
  // sweep by construction — see the static_asserts above), so agreement
  // here means the fast paths reproduce the audited PRAM semantics.
  pram::ThreadPool pool(2);
  const std::size_t n = 129;
  const auto list = list::generators::random_list(n, 7);
  for (const core::AlgorithmEntry* entry : all_entries()) {
    pram::Machine machine(entry->declared, n,
                          pram::Machine::OnViolation::kRecord);
    const BackendRun referee = run_entry(machine, *entry, list);
    TuningGuard guard(FastMode::kFusedFull);
    pram::ParallelExec exec(n, pool, /*threshold=*/32);
    const BackendRun fast = run_entry(exec, *entry, list);
    // The referee tracks reads/writes; zero them out of the comparison by
    // comparing the shared counters only (expect_same_model does exactly
    // that).
    expect_same_model(referee, fast, entry->name + " vs referee");
  }
}

TEST(FusedBackend, AdaptiveThresholdSeamIsResultInvariant) {
  // Whatever threshold calibration lands on, results must not depend on
  // it: run match4 and the randomized baseline right at the calibrated
  // seam and at extreme pins (always-inline vs always-pooled).
  pram::ThreadPool pool(2);
  pram::ParallelExec calibrated(64, pool);
  std::size_t t = calibrated.parallel_threshold();
  if (t == pram::kNeverParallel || t > (std::size_t{1} << 14))
    t = std::size_t{1} << 12;  // pool never won; still exercise both sides
  for (const char* name : {"match4", "randomized"}) {
    const core::AlgorithmEntry* entry =
        core::AlgorithmRegistry::instance().find(name);
    ASSERT_NE(entry, nullptr);
    for (std::size_t n : {t - 1, t, t + 1}) {
      const auto list = list::generators::random_list(n, 23);
      TuningGuard guard(FastMode::kFusedFull);
      pram::ParallelExec inline_only(64, pool, pram::kNeverParallel);
      pram::ParallelExec pooled_always(64, pool, 1);
      pram::ParallelExec seam(64, pool, t);
      const BackendRun a = run_entry(inline_only, *entry, list);
      const BackendRun b = run_entry(pooled_always, *entry, list);
      const BackendRun c = run_entry(seam, *entry, list);
      expect_same_model(a, b,
                        std::string(name) + " inline-vs-pooled n=" +
                            std::to_string(n));
      expect_same_model(a, c,
                        std::string(name) + " inline-vs-seam n=" +
                            std::to_string(n));
    }
  }
}

}  // namespace
}  // namespace llmp
