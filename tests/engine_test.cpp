// Tests for the out-of-core block engine (src/engine): the IO driver's
// file round trip, the BlockStore's cache/evict/spill mechanics, the
// scheduler's pending-work policy, the BlockedList build round trip, and
// the headline property — BlockedMatcher produces the same MatchResult
// and ranking as the flat in-memory paths on lists far larger than the
// cache budget, with zero steady-state allocations on warm reruns.
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "apps/list_ranking.h"
#include "core/sequential.h"
#include "engine/block.h"
#include "engine/block_store.h"
#include "engine/blocked_list.h"
#include "engine/blocked_match.h"
#include "engine/io_driver.h"
#include "engine/scheduler.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "support/failpoint.h"

// ---- Counting global allocator (same idiom as context_test.cpp). ----------

namespace {
std::uint64_t g_news = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  ++g_news;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace llmp {
namespace {

engine::BlockConfig small_config(std::size_t block_nodes = 16,
                                 std::size_t cache_blocks = 2) {
  engine::BlockConfig cfg;
  cfg.block_nodes = block_nodes;
  cfg.cache_blocks = cache_blocks;
  return cfg;
}

// ---- IoDriver. ------------------------------------------------------------

TEST(IoDriver, RoundTripsBlocks) {
  engine::IoDriver d;
  ASSERT_TRUE(d.open(sizeof(std::uint64_t) * 4, "").ok());
  const std::uint64_t a[4] = {1, 2, 3, 4};
  const std::uint64_t b[4] = {5, 6, 7, 8};
  ASSERT_TRUE(d.write_block(3, a).ok());
  ASSERT_TRUE(d.write_block(0, b).ok());
  std::uint64_t out[4] = {};
  ASSERT_TRUE(d.read_block(3, out).ok());
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[3], 4u);
  ASSERT_TRUE(d.read_block(0, out).ok());
  EXPECT_EQ(out[0], 5u);
}

TEST(IoDriver, ReadOfUnwrittenBlockFails) {
  engine::IoDriver d;
  ASSERT_TRUE(d.open(64, "").ok());
  char buf[64];
  const Status s = d.read_block(9, buf);
  EXPECT_FALSE(s.ok());
}

TEST(IoDriver, BadSpillDirSurfacesStatus) {
  engine::IoDriver d;
  const Status s = d.open(64, "/nonexistent-llmp-dir/x");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

// ---- CacheScheduler. ------------------------------------------------------

TEST(CacheScheduler, NextBlockIsMostPending) {
  engine::CacheScheduler sched;
  sched.init(4);
  EXPECT_EQ(sched.next_block(), engine::CacheScheduler::kNone);
  sched.note_post(1);
  sched.note_post(3);
  sched.note_post(3);
  EXPECT_EQ(sched.next_block(), 3u);
  sched.note_drain(3);
  EXPECT_EQ(sched.next_block(), 1u);
}

TEST(CacheScheduler, VictimIsLeastPendingThenLru) {
  engine::CacheScheduler sched;
  sched.init(4);
  sched.touch(0);
  sched.touch(1);
  sched.touch(2);
  sched.note_post(0);
  // 1 and 2 both have no pending work; 1 was used longer ago.
  EXPECT_EQ(sched.pick_victim({0, 1, 2}), 1u);
  sched.touch(1);
  EXPECT_EQ(sched.pick_victim({0, 1, 2}), 2u);
}

// ---- BlockStore. ----------------------------------------------------------

TEST(BlockStore, SpillsAndReloadsThroughTheCache) {
  engine::CacheScheduler sched;
  sched.init(4);
  engine::BlockStore<std::uint32_t> store;
  engine::BlockConfig cfg = small_config(8, 2);
  ASSERT_TRUE(store.init(32, cfg, &sched).ok());
  EXPECT_EQ(store.blocks(), 4u);
  // Write a distinct value into every block, forcing evictions.
  for (std::size_t b = 0; b < 4; ++b) {
    std::uint32_t* f = nullptr;
    ASSERT_TRUE(store.pin(b, &f).ok());
    for (std::size_t i = 0; i < 8; ++i) f[i] = static_cast<std::uint32_t>(b);
    store.mark_dirty(b);
  }
  EXPECT_GE(store.stats().evictions, 2u);
  EXPECT_GT(store.stats().spill_bytes, 0u);
  // Read everything back.
  for (std::size_t b = 0; b < 4; ++b) {
    std::uint32_t* f = nullptr;
    ASSERT_TRUE(store.pin(b, &f).ok());
    for (std::size_t i = 0; i < 8; ++i)
      ASSERT_EQ(f[i], static_cast<std::uint32_t>(b)) << "block " << b;
  }
}

TEST(BlockStore, CleanEvictionNeverSpills) {
  engine::CacheScheduler sched;
  sched.init(4);
  engine::BlockStore<std::uint32_t> store;
  ASSERT_TRUE(store.init(32, small_config(8, 2), &sched, 7).ok());
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t b = 0; b < 4; ++b) {
      std::uint32_t* f = nullptr;
      ASSERT_TRUE(store.pin(b, &f).ok());
      for (std::size_t i = 0; i < 8; ++i) ASSERT_EQ(f[i], 7u);
    }
  }
  EXPECT_EQ(store.stats().spills, 0u);
  EXPECT_EQ(store.stats().spill_bytes, 0u);
  EXPECT_GE(store.stats().evictions, 2u);
}

TEST(BlockStore, HitsWhenResident) {
  engine::CacheScheduler sched;
  sched.init(2);
  engine::BlockStore<std::uint32_t> store;
  ASSERT_TRUE(store.init(16, small_config(8, 2), &sched).ok());
  std::uint32_t* f = nullptr;
  ASSERT_TRUE(store.pin(0, &f).ok());
  ASSERT_TRUE(store.pin(0, &f).ok());
  ASSERT_TRUE(store.pin(0, &f).ok());
  EXPECT_EQ(store.stats().hits, 2u);
  EXPECT_EQ(store.stats().misses, 1u);
}

// ---- BlockedList. ---------------------------------------------------------

TEST(BlockedList, RoundTripsSuccessorArray) {
  const auto src = list::generators::random_list(1000, 42);
  engine::BlockedList bl;
  ASSERT_TRUE(bl.init(src, small_config(64, 3)).ok());
  EXPECT_EQ(bl.size(), 1000u);
  EXPECT_EQ(bl.head(), src.head());
  EXPECT_EQ(bl.tail(), src.tail());
  EXPECT_EQ(bl.storage_policy(), list::StoragePolicy::kBlocked);
  std::vector<index_t> flat;
  ASSERT_TRUE(bl.to_flat(flat).ok());
  EXPECT_EQ(flat, src.next_array());
}

TEST(BlockedList, FlatListReportsFlatPolicy) {
  const auto l = list::LinkedList::identity(4);
  EXPECT_EQ(l.storage_policy(), list::StoragePolicy::kFlat);
}

// ---- BlockedMatcher: correctness vs the flat paths. -----------------------

class BlockedMatchShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BlockedMatchShapes, MatchesFlatSequentialExactly) {
  const auto [n, shape] = GetParam();
  list::LinkedList src = [&] {
    switch (shape) {
      case 0: return list::generators::identity_list(n);
      case 1: return list::generators::reverse_list(n);
      default: return list::generators::random_list(n, 7 + n);
    }
  }();
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(src, small_config(16, 2)).ok());
  core::MatchResult blocked;
  ASSERT_TRUE(matcher.matching_into(blocked).ok());
  const core::MatchResult flat = core::sequential_matching(src);
  EXPECT_EQ(blocked.in_matching, flat.in_matching);
  EXPECT_EQ(blocked.edges, flat.edges);
  EXPECT_EQ(blocked.cost.work, flat.cost.work);
  EXPECT_EQ(blocked.cost.depth, flat.cost.depth);
  ASSERT_EQ(blocked.phases.size(), flat.phases.size());
  EXPECT_EQ(blocked.phases[0].name, flat.phases[0].name);

  std::vector<std::uint64_t> rank;
  ASSERT_TRUE(matcher.ranking_into(rank).ok());
  EXPECT_EQ(rank, apps::sequential_ranking(src));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedMatchShapes,
    ::testing::Combine(::testing::Values(1, 2, 15, 16, 17, 32, 33, 257, 1000),
                       ::testing::Values(0, 1, 2)));

TEST(BlockedMatcher, EightTimesCacheBudgetStillExact) {
  // 64 blocks of 128 nodes against an 8-block cache: the list is 8x the
  // cache budget, so the run must swap heavily — and still be exact.
  const std::size_t n = 64 * 128;
  const auto src = list::generators::random_list(n, 99);
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(src, small_config(128, 8)).ok());
  matcher.reset_stats();
  core::MatchResult blocked;
  ASSERT_TRUE(matcher.matching_into(blocked).ok());
  const core::MatchResult flat = core::sequential_matching(src);
  EXPECT_EQ(blocked.in_matching, flat.in_matching);
  EXPECT_EQ(blocked.edges, flat.edges);

  const engine::EngineStats& st = matcher.stats();
  EXPECT_GT(st.misses, 0u);
  EXPECT_GT(st.loads, 0u);
  EXPECT_GT(st.spill_bytes, 0u);
  EXPECT_GT(st.swaps, 0u);
  EXPECT_GT(st.mailbox_posts, 0u);
  EXPECT_GT(st.mailbox_batches, 0u);
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.hit_rate(), 0.0);
}

TEST(BlockedMatcher, AllResidentListNeedsNoIo) {
  const auto src = list::generators::random_list(100, 5);
  engine::BlockedMatcher matcher;
  engine::BlockConfig cfg = small_config(64, 4);  // 2 blocks, 4 frames
  ASSERT_TRUE(matcher.init(src, cfg).ok());
  matcher.reset_stats();
  core::MatchResult r;
  ASSERT_TRUE(matcher.matching_into(r).ok());
  EXPECT_EQ(matcher.stats().loads, 0u);
  EXPECT_EQ(matcher.stats().spills, 0u);
  EXPECT_EQ(r.edges, core::sequential_matching(src).edges);
}

TEST(BlockedMatcher, WarmRerunsAllocateNothing) {
  const auto src = list::generators::random_list(4096, 11);
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(src, small_config(256, 4)).ok());
  core::MatchResult r;
  // Warm up twice: first run sizes the result and mailbox capacity.
  ASSERT_TRUE(matcher.matching_into(r).ok());
  ASSERT_TRUE(matcher.matching_into(r).ok());
  const std::uint64_t before = g_news;
  ASSERT_TRUE(matcher.matching_into(r).ok());
  ASSERT_TRUE(matcher.matching_into(r).ok());
  EXPECT_EQ(g_news - before, 0u)
      << "warm blocked runs must not allocate";
  EXPECT_EQ(r.edges, core::sequential_matching(src).edges);
}

TEST(BlockedMatcher, FromBudgetConfigRespectsByteBudget) {
  const engine::BlockConfig cfg = engine::BlockConfig::from_budget(
      64 * 1024, sizeof(engine::NodeRec), 512);
  EXPECT_EQ(cfg.block_nodes, 512u);
  EXPECT_EQ(cfg.cache_blocks, 64u * 1024 / (512 * sizeof(engine::NodeRec)));
  EXPECT_LE(cfg.cache_budget_bytes(sizeof(engine::NodeRec)), 64u * 1024);
}

// ---- Failpoints. ----------------------------------------------------------

class EngineFailpoints : public ::testing::Test {
 protected:
  void TearDown() override { support::failpoint::disarm_all(); }
};

TEST_F(EngineFailpoints, SpillFaultSurfacesAsStatus) {
  ASSERT_TRUE(
      support::failpoint::arm_from_string("engine.io.spill=status(unavailable)")
          .ok());
  const auto src = list::generators::random_list(512, 3);
  engine::BlockedMatcher matcher;
  const Status s = matcher.init(src, small_config(16, 2));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST_F(EngineFailpoints, LoadFaultSurfacesAsStatus) {
  const auto src = list::generators::random_list(512, 3);
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(src, small_config(16, 2)).ok());
  ASSERT_TRUE(
      support::failpoint::arm_from_string("engine.io.load=status(unavailable)")
          .ok());
  core::MatchResult r;
  const Status s = matcher.matching_into(r);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_GE(support::failpoint::counts("engine.io.load").statuses, 1u);
}

TEST_F(EngineFailpoints, RecoversCleanlyAfterDisarm) {
  const auto src = list::generators::random_list(512, 3);
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(src, small_config(16, 2)).ok());
  ASSERT_TRUE(
      support::failpoint::arm_from_string("engine.io.load=status(unavailable)")
          .ok());
  core::MatchResult r;
  ASSERT_FALSE(matcher.matching_into(r).ok());
  support::failpoint::disarm_all();
  ASSERT_TRUE(matcher.matching_into(r).ok());
  EXPECT_EQ(r.in_matching, core::sequential_matching(src).in_matching);
}

TEST_F(EngineFailpoints, EvictFailpointFiresOnEviction) {
  ASSERT_TRUE(support::failpoint::arm_from_string(
                  "engine.cache.evict=sleep(0):p=0")
                  .ok());
  const auto src = list::generators::random_list(512, 3);
  engine::BlockedMatcher matcher;
  ASSERT_TRUE(matcher.init(src, small_config(16, 2)).ok());
  EXPECT_GT(support::failpoint::counts("engine.cache.evict").evaluations, 0u);
}

}  // namespace
}  // namespace llmp
