// BAD: within one step body, the same buffer is read after it was
// written — under the synchronous PRAM a processor would still see the
// old value, but the fast executors apply writes immediately, so results
// diverge. The double-buffer discipline requires reads and writes to
// target distinct buffers. Expected: step-read-after-write on the
// `m.rd(rank, ...)` line following the write.
#include <vector>

#include "pram/executor.h"

void jump_broken(llmp::pram::SeqExec& exec, std::size_t n,
                 std::vector<unsigned>& rank,
                 const std::vector<unsigned>& nxt) {
  exec.step(n, [&](std::size_t v, auto&& m) {
    const unsigned s = m.rd(nxt, v);
    m.wr(rank, v, s);
    const unsigned neighbour = m.rd(rank, s % n);  // reads a written buffer
    m.wr(rank, v, neighbour);
  });
}
