// BAD: code outside src/pram/ calls a hardware intrinsic directly,
// bypassing the runtime-dispatched prefetch/SIMD policies (and their
// portable scalar fallbacks) behind pram/prefetch.h and pram/simd.h.
// Expected: raw-intrinsic on the `__builtin_prefetch` line.
#include <cstddef>

namespace llmp::fixture {

inline void warm(const unsigned* p, std::size_t i) {
  __builtin_prefetch(p + i);
}

}  // namespace llmp::fixture
