// BAD: a step body indexes a shared vector directly, bypassing the Mem
// accessor — the classic way to smuggle an untracked access past
// pram::Machine. Expected: step-raw-index on the `labels[v]` line.
#include <vector>

#include "pram/executor.h"

void relabel_broken(llmp::pram::SeqExec& exec, std::size_t n) {
  std::vector<unsigned> labels(n, 0);
  exec.step(n, [&](std::size_t v, auto&& m) {
    const unsigned mine = labels[v];  // raw read of a shared array
    m.wr(labels, v, mine + 1);
  });
}
