// BAD: a <system> include after a "project" include — headers list all
// system includes first. Expected: include-order on the <vector> line.
#pragma once

#include "support/types.h"

#include <vector>

namespace llmp::fixture {
inline std::vector<llmp::index_t> empty_ids() { return {}; }
}  // namespace llmp::fixture
