// BAD: a step lambda explicitly captures a shared array by mutable
// reference. Shared state must flow through the accessor, not a named
// reference capture. Expected: step-ref-capture on the capture list.
#include <vector>

#include "pram/executor.h"

void scatter_broken(llmp::pram::SeqExec& exec, std::size_t n,
                    std::vector<unsigned>& out) {
  exec.step(n, [&out](std::size_t v, auto&& m) {
    m.wr(out, v, static_cast<unsigned>(v));
  });
}
