// BAD: code outside src/list/ and src/engine/ subscripts the successor
// array directly, baking the flat storage layout into a call site that
// must stay storage-agnostic. Expected: storage-access on the `next[v]`
// line (the test lints this fixture under a synthetic src/ path; the
// guarded DCHECK keeps unchecked-index quiet so exactly one rule fires).
#include <cstddef>
#include <vector>

#include "support/check.h"

namespace llmp::fixture {

inline unsigned successor(const std::vector<unsigned>& next, std::size_t v) {
  LLMP_DCHECK(v < next.size());
  return next[v];
}

}  // namespace llmp::fixture
