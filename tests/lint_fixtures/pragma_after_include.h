// BAD: #pragma once appears after the first #include; the guard must
// come first so the header is cheap to re-include. Expected:
// header-pragma-once at the pragma line.
#include <vector>
#pragma once

namespace llmp::fixture {
inline int thrice(int x) { return 3 * x; }
}  // namespace llmp::fixture
