// BAD: the failpoint name has two segments; the convention is
// file.scope.event — exactly three lowercase [a-z0-9_] segments.
// Expected: failpoint-name on the macro line.
#include "support/failpoint.h"

void submit_broken() {
  LLMP_FAILPOINT("serve.push");
}
