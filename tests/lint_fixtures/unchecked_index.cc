// BAD: an indexing helper subscripts a std::vector parameter with no
// LLMP_CHECK/LLMP_DCHECK anywhere in its body. Expected: unchecked-index
// on the `cells[v]` line (the rule applies to files under src/; the test
// lints this fixture under a synthetic src/ path).
#include <cstddef>
#include <vector>

namespace llmp::fixture {

inline unsigned successor(const std::vector<unsigned>& cells, std::size_t v) {
  return cells[v];  // no guard
}

}  // namespace llmp::fixture
