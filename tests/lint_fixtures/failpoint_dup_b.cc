// See failpoint_dup_a.cc: this second site of the same name is the one
// the tree-wide uniqueness check reports.
#include "support/failpoint.h"

void site_two() {
  LLMP_FAILPOINT("fixture.dup.site");
}
