// Fixture: a raw std sync primitive in serve code. The serve layer must
// spell synchronisation through a Sync policy (serve/sync_policy.h) so
// the identical source compiles against the mc:: shims; naming
// std::mutex directly breaks that (serve-raw-sync, line 10).
#include <mutex>

namespace fixture {

inline int locked_increment(int v) {
  static std::mutex mu;
  mu.lock();
  ++v;
  mu.unlock();
  return v;
}

}  // namespace fixture
