// BAD: a project header without #pragma once. Expected:
// header-pragma-once at line 1.
#include <vector>

namespace llmp::fixture {
inline int twice(int x) { return 2 * x; }
}  // namespace llmp::fixture
