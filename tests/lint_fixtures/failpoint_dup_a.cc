// Clean alone — but arms the same name as failpoint_dup_b.cc, so linting
// both files as one tree must flag the second site (failpoint names key a
// process-wide registry and must be unique).
#include "support/failpoint.h"

void site_one() {
  LLMP_FAILPOINT("fixture.dup.site");
}
