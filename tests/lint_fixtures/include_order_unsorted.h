// BAD: project includes out of alphabetical order. Expected:
// include-order on the "list/linked_list.h" line.
#pragma once

#include <vector>

#include "support/types.h"
#include "list/linked_list.h"

namespace llmp::fixture {
inline int zero() { return 0; }
}  // namespace llmp::fixture
