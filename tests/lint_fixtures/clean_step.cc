// GOOD: the negative control — a well-formed translation unit that every
// rule must accept: double-buffered step (reads from `in`, writes to
// `out`), a processor-local scratch vector indexed raw (legal: it is
// never accessed through the Mem accessor), a read nested *inside* a
// write expression on the same buffer (executes before the write
// completes, so it is not a read-after-write), and a guarded indexing
// helper.
#include <cstddef>
#include <vector>

#include "pram/executor.h"
#include "support/check.h"

namespace llmp::fixture {

inline unsigned guarded_successor(const std::vector<unsigned>& succ_of,
                                  std::size_t v) {
  LLMP_DCHECK(v < succ_of.size());
  return succ_of[v];
}

inline void relabel_ok(llmp::pram::SeqExec& exec, std::size_t n,
                       const std::vector<unsigned>& in,
                       std::vector<unsigned>& out,
                       std::vector<unsigned>& histo) {
  exec.step(n, [&](std::size_t v, auto&& m) {
    std::vector<unsigned> scratch(4, 0);
    scratch[v % 4] += 1;  // processor-local: raw indexing is fine
    const unsigned a = m.rd(in, v);
    const unsigned b = m.rd(in, (v + 1) % n);
    m.wr(out, v, a ^ b);
    // Same-cell read-modify-write: the read is nested in the write.
    m.wr(histo, v, m.rd(histo, v) + scratch[0]);
  });
}

}  // namespace llmp::fixture
