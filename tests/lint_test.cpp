// Tests for llmp_lint: the known-bad fixtures must each trigger exactly
// the advertised rule at the advertised line, the negative-control
// fixture and the real source tree must come back clean, and the
// suppression comment must work. The tree-clean test doubles as the
// regression gate: a future commit that breaks the step discipline (or
// the include order) fails here before it fails in review.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace llmp::lint {
namespace {

std::string fixture_dir() {
  return std::string(LLMP_SOURCE_DIR) + "/tests/lint_fixtures/";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Lints a fixture under a synthetic src/ path, so the src/-scoped
/// unchecked-index rule applies to it too. Fixtures named serve_* are
/// linted under a synthetic src/serve/ path so the serve-scoped rules
/// fire as they would in the real tree.
std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string prefix =
      name.rfind("serve_", 0) == 0 ? "src/serve/" : "src/lint_fixtures/";
  return lint_source(prefix + name, read_file(fixture_dir() + name));
}

struct Expected {
  const char* file;
  const char* rule;
  int line;
};

constexpr Expected kBadFixtures[] = {
    {"raw_index.cc", "step-raw-index", 11},
    {"ref_capture.cc", "step-ref-capture", 10},
    {"read_after_write.cc", "step-read-after-write", 17},
    {"missing_pragma_once.h", "header-pragma-once", 1},
    {"pragma_after_include.h", "header-pragma-once", 5},
    {"include_order_system_after_project.h", "include-order", 7},
    {"include_order_unsorted.h", "include-order", 8},
    {"unchecked_index.cc", "unchecked-index", 11},
    {"failpoint_bad_name.cc", "failpoint-name", 7},
    {"serve_raw_sync.cc", "serve-raw-sync", 10},
    {"storage_access.cc", "storage-access", 15},
    {"raw_intrinsic.cc", "raw-intrinsic", 10},
};

TEST(LintFixtures, EachBadFixtureTriggersExactlyItsRule) {
  for (const Expected& e : kBadFixtures) {
    const std::vector<Finding> fs = lint_fixture(e.file);
    ASSERT_EQ(fs.size(), 1u)
        << e.file << ": expected exactly one finding, got " << fs.size();
    EXPECT_EQ(fs[0].rule, e.rule) << e.file;
    EXPECT_EQ(fs[0].line, e.line) << e.file;
  }
}

TEST(LintFixtures, CleanFixtureHasNoFindings) {
  const std::vector<Finding> fs = lint_fixture("clean_step.cc");
  for (const Finding& f : fs) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, FixturesCoverEveryRule) {
  std::set<std::string> covered;
  for (const Expected& e : kBadFixtures) covered.insert(e.rule);
  for (const std::string& rule : all_rule_ids())
    EXPECT_TRUE(covered.count(rule)) << "no fixture triggers " << rule;
}

TEST(LintFixtures, DuplicateFailpointNamesAcrossFilesAreFlagged) {
  // Each dup fixture is clean on its own (valid three-segment name)…
  EXPECT_TRUE(lint_fixture("failpoint_dup_a.cc").empty());
  EXPECT_TRUE(lint_fixture("failpoint_dup_b.cc").empty());
  // …but linted as one tree, the second site of the shared name is
  // flagged (uniqueness is a cross-file property of the registry).
  const std::vector<Finding> fs =
      lint_tree({fixture_dir() + "failpoint_dup_a.cc",
                 fixture_dir() + "failpoint_dup_b.cc"});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "failpoint-name");
  EXPECT_NE(fs[0].file.find("failpoint_dup_b.cc"), std::string::npos);
  EXPECT_NE(fs[0].message.find("failpoint_dup_a.cc"), std::string::npos);
}

TEST(LintSuppression, AllowCommentSilencesTheRule) {
  const std::string bad =
      "inline unsigned at(const std::vector<unsigned>& a, std::size_t i) "
      "{\n"
      "  return a[i];\n"
      "}\n";
  EXPECT_EQ(lint_source("src/x.h", "#pragma once\n" + bad).size(), 1u);
  const std::string allowed =
      "inline unsigned at(const std::vector<unsigned>& a, std::size_t i) "
      "{\n"
      "  return a[i];  // lint:allow(unchecked-index)\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/x.h", "#pragma once\n" + allowed).empty());
}

TEST(LintScope, PramLayerOwnsRawIntrinsics) {
  // A raw prefetch intrinsic is flagged everywhere except src/pram/,
  // which is where the policy wrappers themselves live.
  const std::string text =
      "#pragma once\n"
      "inline void warm(const void* p) { __builtin_prefetch(p); }\n";
  ASSERT_EQ(lint_source("src/core/x.h", text).size(), 1u);
  EXPECT_EQ(lint_source("src/core/x.h", text)[0].rule, "raw-intrinsic");
  EXPECT_TRUE(lint_source("src/pram/x.h", text).empty());

  // The vendor headers and the _mm* vector intrinsics are covered too,
  // including in bench/ code (the rule is not src/-scoped: a bench fast
  // path that forks from the referee'd kernels is just as dishonest).
  const std::string simd =
      "#include <immintrin.h>\n"
      "inline __m256i z() { return _mm256_setzero_si256(); }\n";
  const std::vector<Finding> fs = lint_source("bench/x.cpp", simd);
  ASSERT_EQ(fs.size(), 3u);  // include + __m256i + _mm256_setzero_si256
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "raw-intrinsic");
}

TEST(LintScope, ServeLayerIsExemptFromStepRulesOnly) {
  // A step body directly indexing a vector it also reads through the
  // accessor: a step-raw-index violation anywhere PRAM discipline
  // applies…
  const std::string step_violation =
      "inline void f(Exec& exec, std::vector<unsigned>& a) {\n"
      "  exec.step(a.size(), [&](std::size_t v, auto&& m) {\n"
      "    m.wr(a, v, a[v] + 1);\n"
      "  });\n"
      "}\n";
  const std::string text = "#pragma once\n" + step_violation;
  auto step_findings = [](const std::vector<Finding>& fs) {
    std::size_t count = 0;
    for (const Finding& f : fs) count += f.rule.rfind("step-", 0) == 0;
    return count;
  };
  EXPECT_GT(step_findings(lint_source("src/core/x.h", text)), 0u);
  // …but src/serve/ runs real threads, not PRAM steps: exempt. (Other
  // rule families — here unchecked-index on the vector parameter — keep
  // applying to serve code.)
  EXPECT_EQ(step_findings(lint_source("src/serve/x.h", text)), 0u);

  // Non-step rules still apply to the serve layer: a header without
  // #pragma once is flagged wherever it lives.
  const std::string no_pragma = "inline int g() { return 1; }\n";
  const auto fs = lint_source("src/serve/y.h", no_pragma);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "header-pragma-once");
}

TEST(LintScope, ServeRawSyncAppliesOnlyUnderServe) {
  const std::string raw =
      "#pragma once\n"
      "#include <atomic>\n"
      "inline std::atomic<int> counter{0};\n";
  // Outside src/serve/ the primitives are fair game…
  EXPECT_TRUE(lint_source("src/support/x.h", raw).empty());
  // …inside it they must go through the policy…
  const auto fs = lint_source("src/serve/x.h", raw);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "serve-raw-sync");
  EXPECT_EQ(fs[0].line, 3);
  // …except in sync_policy.h itself, the policies' one sanctioned home.
  EXPECT_TRUE(lint_source("src/serve/sync_policy.h", raw).empty());
  // A comment naming std::mutex is not a finding (the lexer strips it),
  // and the suppression comment works as for every other rule.
  EXPECT_TRUE(
      lint_source("src/serve/y.h",
                  "#pragma once\n// std::mutex is spelled here on purpose\n")
          .empty());
  EXPECT_TRUE(lint_source("src/serve/z.h",
                          "#pragma once\n#include <thread>\n"
                          "inline void f() { std::thread t; "
                          "t.join(); }  // lint:allow(serve-raw-sync)\n")
                  .empty());
}

TEST(LintScope, StorageAccessExemptsListAndEngine) {
  // Subscripting the successor array is the storage layer's whole job:
  // the same text that is flagged elsewhere under src/ is legal inside
  // src/list/ and src/engine/, and outside src/ entirely (bench, tools).
  const std::string raw =
      "#pragma once\n"
      "#include <vector>\n"
      "#include \"support/check.h\"\n"
      "inline unsigned f(const std::vector<unsigned>& next, std::size_t v) "
      "{\n"
      "  LLMP_DCHECK(v < next.size());\n"
      "  return next[v];\n"
      "}\n";
  auto storage_findings = [&](const std::string& path) {
    std::size_t count = 0;
    for (const Finding& f : lint_source(path, raw))
      count += f.rule == "storage-access";
    return count;
  };
  EXPECT_EQ(storage_findings("src/apps/x.h"), 1u);
  EXPECT_EQ(storage_findings("src/core/x.h"), 1u);
  EXPECT_EQ(storage_findings("src/list/x.h"), 0u);
  EXPECT_EQ(storage_findings("src/engine/x.h"), 0u);
  EXPECT_EQ(storage_findings("bench/x.cpp"), 0u);
  // Passing the array whole (no subscript) is fine anywhere: the Mem
  // accessor path `m.rd(next, v)` must not trip the rule.
  const std::string accessor =
      "#pragma once\n"
      "inline void g(M& m, const V& next, std::size_t v) { m.rd(next, v); "
      "}\n";
  EXPECT_TRUE(lint_source("src/apps/y.h", accessor).empty());
  // The --no-storage-access escape hatch.
  Options opt;
  opt.check_storage = false;
  EXPECT_TRUE(lint_source("src/apps/x.h", raw, opt).empty());
}

TEST(LintRepo, SourceTreeIsClean) {
  const std::string root(LLMP_SOURCE_DIR);
  const std::vector<Finding> fs = lint_tree(
      {root + "/src", root + "/bench", root + "/examples", root + "/tools"});
  for (const Finding& f : fs) ADD_FAILURE() << format_finding(f);
}

TEST(LintRepo, FindingsAreSortedAndFormatted) {
  Finding f;
  f.file = "src/a.h";
  f.line = 3;
  f.rule = "include-order";
  f.message = "out of order";
  EXPECT_EQ(format_finding(f), "src/a.h:3: [include-order] out of order");
}

}  // namespace
}  // namespace llmp::lint
