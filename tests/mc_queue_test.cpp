// Model-checking the serve primitives: the real BoundedQueue /
// RetryLedger / WorkerSlot verify clean over every bounded interleaving,
// each seeded queue mutation is caught, and a caught violation's schedule
// replays deterministically. This is the CI face of tools/llmp_mc; the
// scenario bodies live in src/mc/scenarios.cpp (docs/MODELCHECK.md).
#include <gtest/gtest.h>

#include <algorithm>

#include "mc/mc.h"
#include "mc/scenarios.h"

namespace llmp::mc {
namespace {

using serve::QueueMutation;

Scenario get(const std::string& name,
             QueueMutation m = QueueMutation::kNone) {
  return find_scenario(name, m);
}

Report check_scenario(const Scenario& sc) { return check(sc.body, sc.opts); }

// -- the real implementation is clean, exhaustively -------------------------

class CleanScenarioTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CleanScenarioTest, VerifiesCleanAndExhaustsTheBoundedSpace) {
  const Scenario sc = get(GetParam());
  const Report rep = check_scenario(sc);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_TRUE(rep.exhausted) << "space not exhausted after " << rep.executions
                             << " executions";
  EXPECT_GE(rep.executions, 1u);
  // backpressure-reject is single-interleaving by design: try_push never
  // blocks, and its one pop-vs-join race collapses under sleep sets.
  if (sc.name != "queue-backpressure-reject")
    EXPECT_GT(rep.executions, 1u) << "scenario explored only one interleaving";
}

INSTANTIATE_TEST_SUITE_P(Serve, CleanScenarioTest,
                         ::testing::Values("queue-mpmc",
                                           "queue-backpressure-block",
                                           "queue-backpressure-reject",
                                           "queue-close-drain",
                                           "queue-deadline-cancel",
                                           "retry-park-stop",
                                           "worker-handoff"));

// -- every seeded mutation is caught ----------------------------------------

struct MutantCase {
  QueueMutation mutation;
  const char* scenario;
};

class MutantTest : public ::testing::TestWithParam<MutantCase> {};

TEST_P(MutantTest, SeededBugIsCaughtWithAnExpectedKind) {
  const MutantCase mc = GetParam();
  const Scenario sc = get(mc.scenario, mc.mutation);
  const Report rep = check_scenario(sc);
  ASSERT_FALSE(rep.ok) << "mutant survived " << rep.executions
                       << " executions of " << mc.scenario;
  EXPECT_NE(std::find(sc.expected_violation.begin(),
                      sc.expected_violation.end(), rep.violation.kind),
            sc.expected_violation.end())
      << "caught as unexpected kind " << to_string(rep.violation.kind) << ": "
      << rep.violation.message;
  EXPECT_FALSE(rep.violation.trace.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Serve, MutantTest,
    ::testing::Values(
        MutantCase{QueueMutation::kLostNotify, "queue-backpressure-block"},
        MutantCase{QueueMutation::kLostNotify, "queue-deadline-cancel"},
        MutantCase{QueueMutation::kDoublePop, "queue-mpmc"},
        MutantCase{QueueMutation::kDroppedAcquire, "queue-close-drain"},
        MutantCase{QueueMutation::kDroppedAcquire, "queue-mpmc"}),
    [](const ::testing::TestParamInfo<MutantCase>& info) {
      std::string name = std::string(to_string(info.param.mutation)) + "_" +
                         info.param.scenario;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// -- a caught violation replays from its schedule ---------------------------

TEST(McQueueReplayTest, MutantScheduleReproducesTheViolation) {
  const Scenario sc = get("queue-mpmc", QueueMutation::kDoublePop);
  const Report rep = check_scenario(sc);
  ASSERT_FALSE(rep.ok);

  const Violation v = replay(sc.body, rep.violation.schedule);
  EXPECT_EQ(v.kind, rep.violation.kind)
      << "replay outcome differs: " << to_string(v.kind) << " vs "
      << to_string(rep.violation.kind);
  EXPECT_EQ(v.message, rep.violation.message);
}

TEST(McQueueReplayTest, MutantScheduleIsDeterministicAcrossRuns) {
  const Scenario sc = get("queue-close-drain", QueueMutation::kDroppedAcquire);
  const Report a = check_scenario(sc);
  const Report b = check_scenario(sc);
  ASSERT_FALSE(a.ok);
  ASSERT_FALSE(b.ok);
  EXPECT_EQ(a.violation.schedule, b.violation.schedule);
  EXPECT_EQ(a.violation.message, b.violation.message);
  EXPECT_EQ(a.executions, b.executions);
}

TEST(McQueueReplayTest, RealImplementationReplaysMutantScheduleClean) {
  // The schedule that kills the mutant must be a legal, clean execution of
  // the real queue (the bug, not the schedule, is the problem).
  const Scenario bad = get("queue-backpressure-block",
                           QueueMutation::kLostNotify);
  const Report rep = check_scenario(bad);
  ASSERT_FALSE(rep.ok);

  const Scenario good = get("queue-backpressure-block");
  const Violation v = replay(good.body, rep.violation.schedule);
  EXPECT_TRUE(v.kind == ViolationKind::kNone ||
              v.kind == ViolationKind::kDivergence)
      << to_string(v.kind) << ": " << v.message;
}

// -- bounds behave as documented --------------------------------------------

TEST(McQueueBoundsTest, WiderPreemptionBoundExploresMoreSchedules) {
  Scenario sc = get("queue-deadline-cancel");
  Options narrow = sc.opts;
  narrow.preemption_bound = 0;
  Options wide = sc.opts;
  wide.preemption_bound = 3;
  const Report rn = check(sc.body, narrow);
  const Report rw = check(sc.body, wide);
  EXPECT_TRUE(rn.ok) << rn.to_string();
  EXPECT_TRUE(rw.ok) << rw.to_string();
  EXPECT_LE(rn.executions, rw.executions);
}

TEST(McQueueBoundsTest, OrderSeedFindsTheSameMutantBug) {
  Scenario sc = get("queue-mpmc", QueueMutation::kDoublePop);
  sc.opts.order_seed = 0xc0ffee;
  const Report rep = check_scenario(sc);
  EXPECT_FALSE(rep.ok) << "shuffled order missed the seeded bug";
}

}  // namespace
}  // namespace llmp::mc
