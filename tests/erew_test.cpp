// EREW-mode audits. The paper's Lemma 4 is an EREW bound, and the appendix
// states Match2 runs on the EREW model "without any precomputation". These
// tests run the EREW algorithm variants (inbox fan-outs instead of
// neighbour reads) on pram::Machine(Mode::kEREW), which throws on any
// concurrent read/write — so a green test IS the exclusivity proof — and
// check the EREW variants produce exactly the same output as the CREW
// ones.
#include <gtest/gtest.h>

#include "core/cut.h"
#include "core/fanout.h"
#include "core/match1.h"
#include "core/match2.h"
#include "core/match4.h"
#include "core/verify.h"
#include "list/generators.h"
#include "pram/executor.h"
#include "pram/machine.h"

namespace llmp::core {
namespace {

using pram::Machine;
using pram::Mode;

class ErewSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ErewSizes, FanoutHelpersAreExclusiveAndCorrect) {
  const std::size_t n = GetParam();
  const auto list = list::generators::random_list(n, n + 1);
  const auto pred = list.predecessors();
  std::vector<label_t> src(n);
  for (index_t v = 0; v < n; ++v) src[v] = 1000 + v;

  Machine m(Mode::kEREW, 8);
  std::vector<label_t> from_next(n, kno_label), from_pred(n, kno_label);
  pull_from_next(m, list, pred, src, from_next, /*circular=*/true);
  pull_from_pred(m, list, src, from_pred, /*circular=*/true);
  for (index_t v = 0; v < n; ++v) {
    EXPECT_EQ(from_next[v], src[list.circular_next(v)]);
    const index_t p = pred[v] == knil ? list.tail() : pred[v];
    EXPECT_EQ(from_pred[v], src[p]);
  }
}

TEST_P(ErewSizes, RelabelErewMatchesCrewRelabel) {
  const std::size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  const auto list = list::generators::random_list(n, 3 * n);
  const auto pred = list.predecessors();
  pram::SeqExec crew(8);
  Machine erew(Mode::kEREW, 8);
  std::vector<label_t> a, b;
  init_address_labels(crew, n, a);
  init_address_labels(erew, n, b);
  std::vector<label_t> ta(n), tb(n), inbox(n);
  for (int round = 0; round < 4; ++round) {
    relabel(crew, list, a, ta, BitRule::kMostSignificant);
    relabel_erew(erew, list, pred, b, tb, inbox,
                 BitRule::kMostSignificant);
    a.swap(ta);
    b.swap(tb);
    ASSERT_EQ(a, b) << "round " << round;
  }
}

TEST_P(ErewSizes, CutAndWalkErewMatchesCrew) {
  const std::size_t n = GetParam();
  const auto list = list::generators::random_list(n, 7 * n + 1);
  const auto pred = list.predecessors();
  pram::SeqExec crew(8);
  std::vector<label_t> labels;
  init_address_labels(crew, n, labels);
  reduce_to_constant(crew, list, labels, BitRule::kMostSignificant);

  std::vector<std::uint8_t> ma, mb;
  const auto sa = cut_and_walk(crew, list, pred, labels, kFixedPointBound, ma);
  Machine erew(Mode::kEREW, 8);
  const auto sb =
      cut_and_walk_erew(erew, list, pred, labels, kFixedPointBound, mb);
  EXPECT_EQ(ma, mb);
  EXPECT_EQ(sa.cuts, sb.cuts);
  EXPECT_EQ(sa.max_run, sb.max_run);
}

TEST_P(ErewSizes, Match1ErewOnTheMachine) {
  const std::size_t n = GetParam();
  const auto list = list::generators::random_list(n, n + 9);
  Machine m(Mode::kEREW, 8);
  Match1Options opt;
  opt.erew = true;
  const auto r = match1(m, list, opt);  // throws on any EREW violation
  verify::check_maximal(list, r.in_matching);

  // Identical matching to the CREW variant.
  pram::SeqExec crew(8);
  const auto rc = match1(crew, list);
  EXPECT_EQ(r.in_matching, rc.in_matching);
}

TEST_P(ErewSizes, Match2ErewOnTheMachine_Lemma4) {
  const std::size_t n = GetParam();
  const auto list = list::generators::random_list(n, n + 11);
  Machine m(Mode::kEREW, 8);
  Match2Options opt;
  opt.erew = true;
  const auto r = match2(m, list, opt);
  verify::check_maximal(list, r.in_matching);

  pram::SeqExec crew(8);
  const auto rc = match2(crew, list);
  EXPECT_EQ(r.in_matching, rc.in_matching);
}

TEST_P(ErewSizes, Match4ErewOnTheMachine) {
  const std::size_t n = GetParam();
  const auto list = list::generators::random_list(n, n + 13);
  Machine m(Mode::kEREW, 8);
  Match4Options opt;
  opt.erew = true;
  const auto r = match4(m, list, opt);
  verify::check_maximal(list, r.in_matching);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ErewSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 16, 63,
                                                        257, 1024, 4096),
                         ::testing::PrintToStringParamName());

TEST(Erew, CrewVariantsDoViolateErewAsDocumented) {
  // Sanity for the whole exercise: the plain CREW variants really do
  // trip the EREW checker (otherwise these tests would prove nothing).
  const auto list = list::generators::random_list(256, 5);
  Machine m(Mode::kEREW, 8, Machine::OnViolation::kRecord);
  (void)match1(m, list);  // CREW variant on an EREW machine
  EXPECT_FALSE(m.violations().empty());
}

TEST(Erew, StepOverheadIsBoundedConstantFactor) {
  // The EREW variants trade concurrent reads for fan-out steps: depth and
  // work at most ~3x the CREW variant's.
  const std::size_t n = 1 << 14;
  const auto list = list::generators::random_list(n, 21);
  pram::SeqExec crew(256), erew(256);
  const auto rc = match1(crew, list);
  Match1Options opt;
  opt.erew = true;
  const auto re = match1(erew, list, opt);
  EXPECT_LE(re.cost.depth, 3 * rc.cost.depth);
  EXPECT_LE(re.cost.work, 3 * rc.cost.work);
  EXPECT_EQ(re.in_matching, rc.in_matching);
}

TEST(Erew, Match4ErewMatchesCrewMatching) {
  for (std::size_t n : {100u, 5000u}) {
    const auto list = list::generators::random_list(n, n);
    pram::SeqExec a(64), b(64);
    Match4Options opt_erew;
    opt_erew.erew = true;
    const auto rc = match4(a, list);
    const auto re = match4(b, list, opt_erew);
    EXPECT_EQ(rc.in_matching, re.in_matching) << n;
  }
}

}  // namespace
}  // namespace llmp::core
