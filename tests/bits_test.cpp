// Unit tests for support/bits: native bit finders, the appendix's
// unary→binary conversion idiom, both table layouts, bit reversal.
#include "support/bits.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace llmp::bits {
namespace {

TEST(Bits, MsbIndexBasics) {
  EXPECT_EQ(msb_index(1), 0);
  EXPECT_EQ(msb_index(2), 1);
  EXPECT_EQ(msb_index(3), 1);
  EXPECT_EQ(msb_index(0x8000000000000000ULL), 63);
  EXPECT_EQ(msb_index(0xFFFFFFFFFFFFFFFFULL), 63);
}

TEST(Bits, LsbIndexBasics) {
  EXPECT_EQ(lsb_index(1), 0);
  EXPECT_EQ(lsb_index(2), 1);
  EXPECT_EQ(lsb_index(3), 0);
  EXPECT_EQ(lsb_index(0x8000000000000000ULL), 63);
  EXPECT_EQ(lsb_index(12), 2);
}

TEST(Bits, IsolateLsbMatchesAppendixAlgebra) {
  // c := x XOR (x-1); c := (c+1)/2 must equal the lowest set bit.
  for (std::uint64_t x : {1ULL, 2ULL, 3ULL, 12ULL, 40ULL, 1ULL << 40,
                          (1ULL << 40) | (1ULL << 3)}) {
    EXPECT_EQ(isolate_lsb(x), x & (~x + 1)) << x;
  }
}

TEST(Bits, ReverseBitsRoundTrip) {
  rng::Xoshiro256 gen(7);
  for (int width : {1, 3, 8, 13, 24, 33, 64}) {
    for (int t = 0; t < 50; ++t) {
      std::uint64_t x =
          width == 64 ? gen.next() : gen.next() & ((1ULL << width) - 1);
      EXPECT_EQ(reverse_bits(reverse_bits(x, width), width), x)
          << "width=" << width;
    }
  }
}

TEST(Bits, ReverseBitsKnownValues) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(1, 8), 0x80u);
}

class UnaryTableTest
    : public ::testing::TestWithParam<UnaryToBinaryTable::Layout> {};

TEST_P(UnaryTableTest, ConvertAllPowersAcrossWidths) {
  for (int width : {1, 2, 3, 5, 8, 16, 20}) {
    UnaryToBinaryTable t(width, GetParam());
    for (int k = 0; k < width; ++k)
      EXPECT_EQ(t.convert(std::uint64_t{1} << k), k)
          << "width=" << width << " k=" << k;
  }
}

TEST_P(UnaryTableTest, LsbIndexViaTableAgreesWithNative) {
  rng::Xoshiro256 gen(11);
  const int width = 20;
  UnaryToBinaryTable t(width, GetParam());
  for (int i = 0; i < 500; ++i) {
    std::uint64_t x = gen.next() & ((1ULL << width) - 1);
    if (x == 0) continue;
    EXPECT_EQ(t.lsb_index(x), lsb_index(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, UnaryTableTest,
                         ::testing::Values(UnaryToBinaryTable::Layout::kDirect,
                                           UnaryToBinaryTable::Layout::kDeBruijn),
                         [](const auto& info) {
                           return info.param ==
                                          UnaryToBinaryTable::Layout::kDirect
                                      ? "Direct"
                                      : "DeBruijn";
                         });

TEST(UnaryTable, DeBruijnWideWidths) {
  // The De Bruijn layout must work beyond the direct layout's 28-bit cap.
  for (int width : {29, 40, 64}) {
    UnaryToBinaryTable t(width, UnaryToBinaryTable::Layout::kDeBruijn);
    for (int k = 0; k < width; ++k)
      EXPECT_EQ(t.convert(std::uint64_t{1} << k), k) << "width=" << width;
  }
}

TEST(UnaryTable, DirectLayoutSizeMatchesPaper) {
  // "the table T has only log n entries which are useful" — the direct
  // layout stores 2^width cells; the De Bruijn layout stores only
  // next_pow2(width).
  UnaryToBinaryTable direct(10, UnaryToBinaryTable::Layout::kDirect);
  UnaryToBinaryTable packed(10, UnaryToBinaryTable::Layout::kDeBruijn);
  EXPECT_EQ(direct.cells(), 1024u);
  EXPECT_EQ(packed.cells(), 16u);
}

TEST(UnaryTable, DirectLayoutRejectsHugeWidths) {
  EXPECT_THROW(UnaryToBinaryTable(29, UnaryToBinaryTable::Layout::kDirect),
               check_error);
}

TEST(BitReversalTable, MatchesReverseBits) {
  for (int width : {1, 4, 9, 12}) {
    BitReversalTable t(width);
    const std::uint32_t limit = 1u << width;
    for (std::uint32_t x = 0; x < limit; ++x)
      EXPECT_EQ(t.reverse(x), reverse_bits(x, width)) << "width=" << width;
  }
}

TEST(TableBitOps, MsbViaReversalAgreesWithNative) {
  const int width = 16;
  TableBitOps ops(width);
  rng::Xoshiro256 gen(3);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t x = gen.next() & ((1ULL << width) - 1);
    if (x == 0) continue;
    EXPECT_EQ(ops.msb_index(x), msb_index(x));
    EXPECT_EQ(ops.lsb_index(x), lsb_index(x));
  }
}

}  // namespace
}  // namespace llmp::bits
