// llmp_serve CLI parsing — pins the namespaced flag vocabulary, every
// legacy alias, the mutual-exclusion and error paths, and the --help
// text's coverage of both spellings (the regression gate for flag
// renames).
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/cli.h"
#include "serve/service.h"
#include "support/status.h"

namespace llmp::net {
namespace {

/// Run the parser over a flag list; fails the test on parse error.
ServeCliOptions parse_ok(std::vector<const char*> args) {
  args.insert(args.begin(), "llmp_serve");
  ServeCliOptions opt;
  bool help = false;
  const Status s = parse_serve_cli(static_cast<int>(args.size()), args.data(),
                                   &opt, &help);
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_FALSE(help);
  return opt;
}

Status parse_err(std::vector<const char*> args) {
  args.insert(args.begin(), "llmp_serve");
  ServeCliOptions opt;
  bool help = false;
  return parse_serve_cli(static_cast<int>(args.size()), args.data(), &opt,
                         &help);
}

TEST(NetCli, DefaultsMatchTheDocumentedOnes) {
  const ServeCliOptions opt = parse_ok({});
  EXPECT_EQ(opt.requests, 2000u);
  EXPECT_EQ(opt.n, 10000u);
  EXPECT_EQ(opt.lists, 8u);
  EXPECT_EQ(opt.alg, "match4");
  EXPECT_EQ(opt.warmup, kAutoWarmup);
  EXPECT_EQ(opt.service.workers, 4u);
  EXPECT_EQ(opt.service.queue_capacity, 256u);
  EXPECT_EQ(opt.service.audit, serve::AuditPolicy::kOff);
  EXPECT_FALSE(opt.listen);
  EXPECT_TRUE(opt.connect_host.empty());
  EXPECT_EQ(opt.conns, 1u);
  EXPECT_FALSE(opt.csv);
}

TEST(NetCli, NamespacedFlagsParse) {
  const ServeCliOptions opt = parse_ok(
      {"--serve.requests", "500", "--serve.n", "1024", "--serve.lists", "3",
       "--serve.workers", "2", "--serve.queue", "32", "--serve.policy",
       "reject", "--serve.alg", "sequential", "--serve.deadline-ms", "250",
       "--serve.verify", "--serve.warmup", "7", "--serve.audit", "repair",
       "--fault.retries", "3", "--fault.wedge-ms", "40", "--fault.degrade",
       "--csv"});
  EXPECT_EQ(opt.requests, 500u);
  EXPECT_EQ(opt.n, 1024u);
  EXPECT_EQ(opt.lists, 3u);
  EXPECT_EQ(opt.service.workers, 2u);
  EXPECT_EQ(opt.service.queue_capacity, 32u);
  EXPECT_EQ(opt.service.overflow, serve::OverflowPolicy::kReject);
  EXPECT_EQ(opt.alg, "sequential");
  EXPECT_EQ(opt.deadline_ms, 250u);
  EXPECT_TRUE(opt.service.verify);
  EXPECT_EQ(opt.warmup, 7u);
  EXPECT_EQ(opt.service.audit, serve::AuditPolicy::kRepair);
  EXPECT_EQ(opt.service.retry.max_attempts, 3);
  EXPECT_EQ(opt.service.wedge_threshold.count(), 40);
  EXPECT_EQ(opt.service.supervisor_period.count(), 10);  // wedge / 4
  EXPECT_TRUE(opt.service.degrade.enabled);
  EXPECT_TRUE(opt.csv);
}

TEST(NetCli, LegacyAliasesStillParseIdentically) {
  const ServeCliOptions namespaced = parse_ok(
      {"--serve.requests", "64", "--serve.workers", "2", "--serve.policy",
       "reject", "--serve.alg", "match2", "--serve.verify",
       "--fault.retries", "2", "--net.listen", "0"});
  const ServeCliOptions legacy = parse_ok(
      {"--requests", "64", "--workers", "2", "--policy", "reject", "--alg",
       "match2", "--verify", "--retries", "2", "--listen", "0"});
  EXPECT_EQ(legacy.requests, namespaced.requests);
  EXPECT_EQ(legacy.service.workers, namespaced.service.workers);
  EXPECT_EQ(legacy.service.overflow, namespaced.service.overflow);
  EXPECT_EQ(legacy.alg, namespaced.alg);
  EXPECT_EQ(legacy.service.verify, namespaced.service.verify);
  EXPECT_EQ(legacy.service.retry.max_attempts,
            namespaced.service.retry.max_attempts);
  EXPECT_EQ(legacy.listen, namespaced.listen);
  EXPECT_TRUE(legacy.listen);
}

TEST(NetCli, NetFlagsParse) {
  const ServeCliOptions opt = parse_ok(
      {"--net.connect", "127.0.0.1:9000", "--net.conns", "4", "--net.tenant",
       "7", "--net.quota-rps", "12.5", "--net.quota-burst", "3",
       "--net.max-in-flight", "16"});
  EXPECT_FALSE(opt.listen);
  EXPECT_EQ(opt.connect_host, "127.0.0.1");
  EXPECT_EQ(opt.connect_port, 9000);
  EXPECT_EQ(opt.conns, 4u);
  EXPECT_EQ(opt.tenant, 7u);
  EXPECT_DOUBLE_EQ(opt.quota_rps, 12.5);
  EXPECT_DOUBLE_EQ(opt.quota_burst, 3.0);
  EXPECT_EQ(opt.max_in_flight, 16u);
}

TEST(NetCli, ListenAndConnectAreMutuallyExclusive) {
  const Status s =
      parse_err({"--net.listen", "9000", "--net.connect", "h:9001"});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("mutually exclusive"), std::string::npos);
}

TEST(NetCli, ErrorsNameTheOffendingFlag) {
  // Unknown flag (reported under its original spelling).
  Status s = parse_err({"--no-such-flag"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--no-such-flag"), std::string::npos);
  // Bare non-flag argument.
  EXPECT_FALSE(parse_err({"loose"}).ok());
  // Missing value.
  s = parse_err({"--serve.requests"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing value"), std::string::npos);
  // Non-numeric value.
  s = parse_err({"--serve.requests", "many"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--serve.requests"), std::string::npos);
  // Bad policy.
  EXPECT_FALSE(parse_err({"--serve.policy", "drop"}).ok());
  // Bad audit mode.
  s = parse_err({"--serve.audit", "heal"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("off|audit|repair"), std::string::npos);
  // Bad host:port shapes.
  EXPECT_FALSE(parse_err({"--net.connect", "no-port"}).ok());
  EXPECT_FALSE(parse_err({"--net.connect", ":9000"}).ok());
  EXPECT_FALSE(parse_err({"--net.connect", "h:"}).ok());
  EXPECT_FALSE(parse_err({"--net.connect", "h:70000"}).ok());
  EXPECT_FALSE(parse_err({"--net.listen", "70000"}).ok());
}

TEST(NetCli, HelpFlagShortCircuits) {
  ServeCliOptions opt;
  bool help = false;
  const char* argv[] = {"llmp_serve", "--help"};
  EXPECT_TRUE(parse_serve_cli(2, argv, &opt, &help).ok());
  EXPECT_TRUE(help);
  const char* argv2[] = {"llmp_serve", "-h", "--no-such-flag"};
  help = false;
  EXPECT_TRUE(parse_serve_cli(3, argv2, &opt, &help).ok());
  EXPECT_TRUE(help);  // --help wins before the bad flag is reached
}

TEST(NetCli, UsageTextCoversEveryFlagAndAlias) {
  const std::string usage = serve_cli_usage();
  // Every namespaced flag appears…
  for (const char* flag :
       {"--serve.requests", "--serve.n", "--serve.lists", "--serve.workers",
        "--serve.queue", "--serve.policy", "--serve.alg",
        "--serve.deadline-ms", "--serve.verify", "--serve.warmup",
        "--serve.audit", "--fault.failpoints", "--fault.retries",
        "--fault.wedge-ms",
        "--fault.degrade", "--net.listen", "--net.connect", "--net.conns",
        "--net.tenant", "--net.quota-rps", "--net.quota-burst",
        "--net.max-in-flight", "--csv"})
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  // …and every legacy alias is documented next to its new spelling.
  for (const char* alias :
       {"[alias: --requests]", "[alias: --n]", "[alias: --lists]",
        "[alias: --workers]", "[alias: --queue]", "[alias: --policy]",
        "[alias: --alg]", "[alias: --deadline-ms]", "[alias: --verify]",
        "[alias: --warmup]", "[alias: --failpoints]", "[alias: --retries]",
        "[alias: --wedge-ms]", "[alias: --degrade]", "[alias: --listen]"})
    EXPECT_NE(usage.find(alias), std::string::npos) << alias;
}

TEST(NetCli, LastValueWinsOnRepeatedFlags) {
  const ServeCliOptions opt =
      parse_ok({"--serve.requests", "10", "--requests", "99"});
  EXPECT_EQ(opt.requests, 99u);  // alias and namespaced share one key
}

}  // namespace
}  // namespace llmp::net
