// Tests for the Euler-tour tree reduction: tour structure and the three
// statistics against a sequential DFS oracle, over random/path/star
// shapes.
#include "apps/euler_tour.h"

#include <gtest/gtest.h>

#include <functional>

#include "pram/executor.h"
#include "pram/machine.h"

namespace llmp::apps {
namespace {

struct Oracle {
  std::vector<std::uint64_t> depth, size, preorder;
};

Oracle dfs_oracle(const Tree& tree) {
  const std::size_t n = tree.size();
  Oracle o;
  o.depth.assign(n, 0);
  o.size.assign(n, 1);
  o.preorder.assign(n, 0);
  std::vector<std::vector<index_t>> children(n);
  for (index_t v = 0; v < n; ++v)
    if (tree.parent[v] != knil) children[tree.parent[v]].push_back(v);
  std::uint64_t counter = 0;
  // Iterative DFS in ascending-child order (matches the tour's order).
  std::function<void(index_t, std::uint64_t)> go = [&](index_t v,
                                                       std::uint64_t d) {
    o.depth[v] = d;
    o.preorder[v] = counter++;
    for (index_t c : children[v]) {
      go(c, d + 1);
      o.size[v] += o.size[c];
    }
  };
  go(tree.root, 0);
  return o;
}

void expect_valid_tour(const Tree& tree) {
  const EulerTour tour = build_euler_tour(tree);
  const std::size_t m = tour.arcs.size();
  EXPECT_EQ(m, 2 * (tree.size() - 1));
  // Walking the tour simulates a DFS: a stack of open down-arcs.
  std::vector<index_t> stack;
  std::size_t seen = 0;
  for (index_t a = tour.arcs.head(); a != knil; a = tour.arcs.next(a)) {
    ++seen;
    if (tour.is_down[a]) {
      stack.push_back(tour.arc_child[a]);
    } else {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), tour.arc_child[a]) << "unbalanced tour";
      stack.pop_back();
    }
  }
  EXPECT_EQ(seen, m);
  EXPECT_TRUE(stack.empty());
}

class TourShapes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TourShapes, TourIsBalancedDfsWalk) {
  const std::size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  expect_valid_tour(random_tree(n, n * 13 + 1));
  expect_valid_tour(path_tree(n));
  expect_valid_tour(star_tree(n));
}

TEST_P(TourShapes, StatisticsMatchDfsOracle) {
  const std::size_t n = GetParam();
  pram::SeqExec exec(64);
  for (const Tree& tree :
       {random_tree(n, 7 * n + 5), path_tree(n), star_tree(n)}) {
    const TreeStats stats = tree_statistics(exec, tree);
    if (n < 2) {
      EXPECT_EQ(stats.subtree_size, std::vector<std::uint64_t>{1});
      continue;
    }
    const Oracle o = dfs_oracle(tree);
    EXPECT_EQ(stats.depth, o.depth);
    EXPECT_EQ(stats.subtree_size, o.size);
    EXPECT_EQ(stats.preorder, o.preorder);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TourShapes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 17,
                                                        100, 1024, 5000),
                         ::testing::PrintToStringParamName());

TEST(EulerTour, PathAndStarExtremes) {
  pram::SeqExec exec(64);
  const std::size_t n = 64;
  const auto path_stats = tree_statistics(exec, path_tree(n));
  EXPECT_EQ(path_stats.depth[n - 1], n - 1);
  EXPECT_EQ(path_stats.subtree_size[0], n);
  EXPECT_EQ(path_stats.preorder[n - 1], n - 1);
  const auto star_stats = tree_statistics(exec, star_tree(n));
  for (index_t v = 1; v < n; ++v) {
    EXPECT_EQ(star_stats.depth[v], 1u);
    EXPECT_EQ(star_stats.subtree_size[v], 1u);
  }
}

TEST(EulerTour, CrewLegalOnTheMachine) {
  pram::Machine m(pram::Mode::kCREW, 8);
  const Tree tree = random_tree(200, 3);
  const TreeStats stats = tree_statistics(m, tree);
  const Oracle o = dfs_oracle(tree);
  EXPECT_EQ(stats.depth, o.depth);
}

TEST(EulerTour, RejectsMalformedTrees) {
  Tree bad;
  bad.parent = {knil, 0, 1};
  bad.root = 1;  // disagrees with the parent array
  EXPECT_THROW(build_euler_tour(bad), check_error);
}

}  // namespace
}  // namespace llmp::apps
