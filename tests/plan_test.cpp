// Unit tests for the algorithm planners (Match2/Match3/Match4 parameter
// resolution) and the label-bound arithmetic they rest on.
#include <gtest/gtest.h>

#include "core/gather.h"
#include "core/match2.h"
#include "core/match3.h"
#include "core/match4.h"

namespace llmp::core {
namespace {

TEST(PlanMatch2, SizesAreDeterminedBeforeTouchingTheList) {
  const std::size_t n = std::size_t{1} << 20;
  const Match2Plan plan = plan_match2(n, {}, /*processors=*/256);
  // Two relabel rounds: n → 2·ceil(log2 n) → 2·ceil(log2 40) = 12.
  EXPECT_EQ(plan.partition_rounds, 2);
  EXPECT_EQ(plan.label_bound, 12u);
  EXPECT_EQ(plan.blocks, 256u);  // default: the executor's p
  // Counter grid: label_bound·blocks cells, padded to the power of two
  // the exclusive scan works over.
  EXPECT_GE(plan.count_cells, std::size_t{12} * 256);
  EXPECT_EQ(plan.count_cells & (plan.count_cells - 1), 0u);
}

TEST(PlanMatch2, BlocksClampToNAndHonorSortBlocks) {
  Match2Options opt;
  opt.sort_blocks = 8;
  EXPECT_EQ(plan_match2(1 << 16, opt, 1024).blocks, 8u);
  // More processors than nodes: blocks clamp to n.
  EXPECT_EQ(plan_match2(16, {}, 1024).blocks, 16u);
  // Degenerate sizes stay well-formed.
  const Match2Plan tiny = plan_match2(1, {}, 64);
  EXPECT_EQ(tiny.label_bound, 1u);
  EXPECT_GE(tiny.count_cells, 1u);
}

TEST(PlanMatch2, MoreRoundsShrinkTheLabelBound) {
  Match2Options two, three;
  three.partition_rounds = 3;
  EXPECT_LT(plan_match2(1 << 20, three, 256).label_bound,
            plan_match2(1 << 20, two, 256).label_bound);
}

TEST(Bounds, BoundAfterRoundsIteratesThePaperRecurrence) {
  // n → 2·ceil(log2 n) per round, clamped at the small end.
  EXPECT_EQ(bound_after_rounds(1 << 20, 0), 1u << 20);
  EXPECT_EQ(bound_after_rounds(1 << 20, 1), 40u);
  EXPECT_EQ(bound_after_rounds(1 << 20, 2), 12u);
  EXPECT_EQ(bound_after_rounds(1 << 20, 3), 8u);
  EXPECT_EQ(bound_after_rounds(1 << 20, 4), 6u);
  EXPECT_EQ(bound_after_rounds(1 << 20, 50), 6u);  // fixed point
  EXPECT_EQ(bound_after_rounds(2, 5), 2u);         // tiny-n clamp
}

TEST(Bounds, RoundsToConstantTracksG) {
  for (std::uint64_t n : {7ULL, 100ULL, 1ULL << 16, 1ULL << 20, 1ULL << 40}) {
    const int r = rounds_to_constant(static_cast<std::size_t>(n));
    EXPECT_LE(r, itlog::G(n) + 2) << n;
    EXPECT_GE(r, itlog::G(n) - 2) << n;
  }
}

TEST(PlanMatch3, AutoPlanRespectsTableBudget) {
  for (std::size_t n : {std::size_t{100}, std::size_t{1} << 12,
                        std::size_t{1} << 20, std::size_t{1} << 26}) {
    const Match3Plan plan = plan_match3(n, {});
    if (plan.needs_table) {
      EXPECT_GT(plan.table_cells, 0u) << n;
      EXPECT_LE(plan.table_cells, Match3Options::kAutoTableCells) << n;
      EXPECT_GE(plan.collapse_width, 2) << n;
      EXPECT_LE(1 << plan.gather_rounds, 2 * plan.collapse_width) << n;
      // The table stands in for exactly the rounds that finish reduction.
      EXPECT_EQ(bound_after_rounds(
                    n, plan.crunch_rounds + plan.collapse_width - 1),
                kFixedPointBound)
          << n;
    }
  }
}

TEST(PlanMatch3, ExplicitTooWideCrunchThrows) {
  Match3Options opt;
  opt.crunch_rounds = 1;  // 7-bit labels × width 4 = 2^28 cells: too big
  EXPECT_THROW(plan_match3(std::size_t{1} << 40, opt), check_error);
}

TEST(PlanMatch3, ExplicitFeasibleCrunchHonored) {
  Match3Options opt;
  opt.crunch_rounds = 3;
  const auto plan = plan_match3(std::size_t{1} << 20, opt);
  EXPECT_EQ(plan.crunch_rounds, 3);
  EXPECT_TRUE(plan.needs_table);
  EXPECT_EQ(plan.component_bits, 3);  // bound 8 after 3 rounds
}

TEST(PlanMatch4, IterativePlanMatchesBoundArithmetic) {
  Match4Options opt;
  opt.i_parameter = 2;
  const auto plan = plan_match4(std::size_t{1} << 20, opt);
  EXPECT_FALSE(plan.uses_table);
  EXPECT_EQ(plan.set_bound, bound_after_rounds(std::size_t{1} << 20, 2));
}

TEST(PlanMatch4, TablePlanCoversTheRemainingRounds) {
  Match4Options opt;
  opt.partition_with_table = true;
  for (int i : {2, 3, 4, 5, 6}) {
    opt.i_parameter = i;
    const auto plan = plan_match4(std::size_t{1} << 22, opt);
    if (!plan.uses_table) continue;  // crunching alone reached the bound
    EXPECT_EQ(plan.crunch_rounds + plan.collapse_width - 1, i) << i;
    EXPECT_LE(plan.component_bits * (1 << plan.gather_rounds),
              MatchingLookupTable::kMaxKeyBits)
        << i;
  }
}

TEST(PlanMatch4, RowsShrinkWithI) {
  label_t prev = ~label_t{0};
  for (int i = 1; i <= 6; ++i) {
    Match4Options opt;
    opt.i_parameter = i;
    const auto plan = plan_match4(std::size_t{1} << 20, opt);
    EXPECT_LE(plan.set_bound, prev) << i;
    prev = plan.set_bound;
  }
}

}  // namespace
}  // namespace llmp::core
