// Degenerate and block-boundary lengths through every registered
// algorithm, on both storage policies. The block engine's local pass and
// mailbox rounds change behaviour exactly at block-size multiples, so the
// interesting lengths are n ∈ {1, 2, B−1, B, B+1, 2B} for the engine's
// block_nodes B — plus n = 0, which the list constructor must reject
// before any algorithm sees it. Every flat run is maximality-checked;
// every blocked run is diffed bit-for-bit against the flat sequential
// result, and the blocked image must round-trip back to the exact
// successor array it was built from.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/list_ranking.h"
#include "apps/register.h"
#include "core/registry.h"
#include "core/run.h"
#include "core/sequential.h"
#include "core/verify.h"
#include "engine/blocked_match.h"
#include "list/generators.h"
#include "list/linked_list.h"
#include "pram/context.h"
#include "pram/executor.h"

namespace llmp {
namespace {

constexpr std::size_t kBlockNodes = 16;

std::vector<std::size_t> boundary_sizes() {
  return {1, 2, kBlockNodes - 1, kBlockNodes, kBlockNodes + 1,
          2 * kBlockNodes};
}

std::vector<list::LinkedList> shapes_of(std::size_t n) {
  std::vector<list::LinkedList> shapes;
  shapes.push_back(list::generators::identity_list(n));
  shapes.push_back(list::generators::reverse_list(n));
  shapes.push_back(list::generators::random_list(n, 7));
  return shapes;
}

TEST(Boundary, EmptyListIsRejectedBeforeAnyAlgorithmRuns) {
  const auto r = list::LinkedList::make({});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(list::LinkedList::validate({}).ok());
}

// Every `matching` registry entry (each public name with its canonical
// options — seq, match1..4 and variants, random) must handle each
// boundary length and produce a maximal matching.
TEST(Boundary, EveryRegisteredAlgorithmHandlesBoundaryLengths) {
  apps::register_algorithms();
  std::size_t entries_run = 0;
  for (const core::AlgorithmEntry* e :
       core::AlgorithmRegistry::instance().entries()) {
    if (!e->matching) continue;
    ++entries_run;
    for (std::size_t n : boundary_sizes()) {
      for (const list::LinkedList& lst : shapes_of(n)) {
        pram::SeqExec seq(64);
        pram::Context ctx(seq);
        core::MatchResult r;
        ASSERT_TRUE(core::run_matching_into(ctx, lst, e->canonical, r).ok())
            << e->name << " n=" << n;
        ASSERT_NO_THROW(core::verify::check_maximal(lst, r.in_matching))
            << e->name << " n=" << n;
        // Maximality on a path of n−1 pointers bounds the size: at
        // least every third pointer is taken, at most every other.
        const std::size_t ptrs = n - 1;
        EXPECT_GE(r.edges, (ptrs + 2) / 3) << e->name << " n=" << n;
        EXPECT_LE(r.edges, n / 2) << e->name << " n=" << n;
      }
    }
  }
  EXPECT_GE(entries_run, 6u);  // seq, match1..4, random at minimum
}

// The blocked engine at the same lengths: every partial-final-block and
// exact-multiple case must match the flat sequential result exactly,
// with caches of 1, 2, and enough frames to hold everything.
TEST(Boundary, BlockedStorageMatchesFlatAtBlockBoundaries) {
  for (std::size_t n : boundary_sizes()) {
    for (const list::LinkedList& lst : shapes_of(n)) {
      core::MatchResult flat;
      core::sequential_matching_into(lst, flat);
      const std::vector<std::uint64_t> flat_rank =
          apps::sequential_ranking(lst);
      for (std::size_t cache : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
        engine::BlockConfig cfg;
        cfg.block_nodes = kBlockNodes;
        cfg.cache_blocks = cache;
        engine::BlockedMatcher matcher;
        ASSERT_TRUE(matcher.init(lst, cfg).ok()) << n << "/" << cache;
        core::MatchResult blocked;
        ASSERT_TRUE(matcher.matching_into(blocked).ok()) << n << "/" << cache;
        EXPECT_EQ(blocked.in_matching, flat.in_matching) << n << "/" << cache;
        EXPECT_EQ(blocked.edges, flat.edges) << n << "/" << cache;
        EXPECT_EQ(blocked.cost.work, flat.cost.work) << n << "/" << cache;
        std::vector<std::uint64_t> rank;
        ASSERT_TRUE(matcher.ranking_into(rank).ok()) << n << "/" << cache;
        EXPECT_EQ(rank, flat_rank) << n << "/" << cache;
      }
    }
  }
}

// Round-trip: the blocked image streams back out as exactly the
// successor array it was built from, at every boundary length (the
// partial final block must not leak fill values into the flat copy).
TEST(Boundary, BlockedImageRoundTripsAtBoundaryLengths) {
  for (std::size_t n : boundary_sizes()) {
    const list::LinkedList lst = list::generators::random_list(n, 11);
    engine::BlockConfig cfg;
    cfg.block_nodes = kBlockNodes;
    cfg.cache_blocks = 1;  // worst case: every pin can evict
    engine::BlockedList blocked;
    ASSERT_TRUE(blocked.init(lst, cfg).ok()) << n;
    std::vector<index_t> out;
    ASSERT_TRUE(blocked.to_flat(out).ok()) << n;
    ASSERT_EQ(out.size(), n);
    for (index_t v = 0; v < n; ++v) EXPECT_EQ(out[v], lst.next(v)) << n;
  }
}

}  // namespace
}  // namespace llmp
