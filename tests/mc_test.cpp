// Unit tests for the model checker's own machinery: vector-clock algebra,
// dependence, the scheduler's violation detectors (races, deadlocks, lost
// wakeups, assertions, step budget), sleep-set reduction, and schedule
// replay determinism. The serve-layer scenarios live in mc_queue_test.cpp.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "mc/mc.h"

namespace llmp::mc {
namespace {

// ---------------------------------------------------------------------------
// VectorClock.
// ---------------------------------------------------------------------------

TEST(VectorClockTest, TickAndAt) {
  VectorClock c;
  EXPECT_EQ(c.at(0), 0u);
  c.tick(0);
  c.tick(0);
  c.tick(3);
  EXPECT_EQ(c.at(0), 2u);
  EXPECT_EQ(c.at(3), 1u);
  EXPECT_EQ(c.at(1), 0u);
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock a, b;
  a.tick(0);
  a.tick(0);
  b.tick(1);
  b.tick(0);
  a.join(b);
  EXPECT_EQ(a.at(0), 2u);  // max(2, 1)
  EXPECT_EQ(a.at(1), 1u);  // max(0, 1)
}

TEST(VectorClockTest, LeqOrdersHappensBefore) {
  VectorClock a, b;
  a.tick(0);
  b = a;
  b.tick(1);
  EXPECT_TRUE(a.leq(b));   // a happens-before b
  EXPECT_FALSE(b.leq(a));
  VectorClock c;
  c.tick(2);
  EXPECT_FALSE(a.leq(c));  // concurrent: unordered both ways
  EXPECT_FALSE(c.leq(a));
}

TEST(VectorClockTest, ObservedIsTheEpochFastPath) {
  VectorClock reader;
  reader.tick(1);
  reader.tick(1);
  EXPECT_TRUE(reader.observed(1, 2));   // has seen 2 ops of task 1
  EXPECT_FALSE(reader.observed(1, 3));  // but not a third
  EXPECT_FALSE(reader.observed(0, 1));
}

TEST(VectorClockTest, ToStringElidesTrailingZeros) {
  VectorClock c;
  EXPECT_EQ(c.to_string(), "[0]");
  c.tick(0);
  c.tick(2);
  EXPECT_EQ(c.to_string(), "[1 0 1]");
}

// ---------------------------------------------------------------------------
// Dependence relation.
// ---------------------------------------------------------------------------

TEST(DependentTest, DisjointObjectsCommute) {
  Op a{OpKind::kMutexLock, 1, 0, 0, false};
  Op b{OpKind::kMutexLock, 2, 0, 0, false};
  EXPECT_FALSE(dependent(a, b));
}

TEST(DependentTest, SameObjectConflictsUnlessBothRead) {
  Op w{OpKind::kCellWrite, 7, 0, 0, false};
  Op r{OpKind::kCellRead, 7, 0, 0, false};
  EXPECT_TRUE(dependent(w, r));
  EXPECT_TRUE(dependent(w, w));
  EXPECT_FALSE(dependent(r, r));  // two reads commute
}

TEST(DependentTest, CvWaitDependsOnItsMutex) {
  Op wait{OpKind::kCvWait, /*cv=*/3, /*mu=*/4, 0, false};
  Op lock{OpKind::kMutexLock, 4, 0, 0, false};
  EXPECT_TRUE(dependent(wait, lock));
}

// ---------------------------------------------------------------------------
// Detector end-to-end: each classic bug class on a minimal body.
// ---------------------------------------------------------------------------

TEST(McCheckTest, RaceFreeCounterPassesExhaustively) {
  auto rep = check([] {
    mutex mu("mu");
    cell<int> n(0, "n");
    thread t(
        [&] {
          std::unique_lock<mutex> l(mu);
          n.w() += 1;
        },
        "inc");
    {
      std::unique_lock<mutex> l(mu);
      n.w() += 1;
    }
    t.join();
    std::unique_lock<mutex> l(mu);
    MC_ASSERT(n.r() == 2);
  });
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_TRUE(rep.exhausted);
  EXPECT_GE(rep.executions, 2u);  // both acquisition orders explored
}

TEST(McCheckTest, UnlockedWriteIsADataRace) {
  auto rep = check([] {
    cell<int> x(0, "x");
    thread t([&] { x.w() = 1; }, "writer");
    (void)x.r();  // concurrent with the writer: no ordering either way
    t.join();
  });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kDataRace);
  EXPECT_NE(rep.violation.message.find("'x'"), std::string::npos);
  EXPECT_FALSE(rep.violation.schedule.empty());
}

TEST(McCheckTest, AbbaLockOrderIsADeadlockWithCycle) {
  auto rep = check([] {
    mutex a("a"), b("b");
    thread t1(
        [&] {
          std::unique_lock<mutex> la(a);
          std::unique_lock<mutex> lb(b);
        },
        "ab");
    thread t2(
        [&] {
          std::unique_lock<mutex> lb(b);
          std::unique_lock<mutex> la(a);
        },
        "ba");
    t1.join();
    t2.join();
  });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kDeadlock);
  EXPECT_NE(rep.violation.message.find("cycle"), std::string::npos);
}

TEST(McCheckTest, NotifyBeforeWaitIsALostWakeup) {
  // No predicate, no state: if the notify fires before a wait starts (or
  // wakes only one of the two), someone sleeps forever.
  auto rep = check([] {
    mutex mu("mu");
    condition_variable cv("cv");
    thread t(
        [&] {
          std::unique_lock<mutex> l(mu);
          cv.wait(l);
        },
        "waiter");
    cv.notify_one();
    std::unique_lock<mutex> l(mu);
    cv.wait(l);
  });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kLostWakeup);
}

TEST(McCheckTest, PredicatedWaitWithTimedFallbackPasses) {
  // The modeled timeout fires only at quiescence, so a timed wait can
  // never hang — this is how watchdog-style loops stay checkable.
  auto rep = check([] {
    mutex mu("mu");
    condition_variable cv("cv");
    cell<bool> flag(false, "flag");
    thread t(
        [&] {
          std::unique_lock<mutex> l(mu);
          flag.w() = true;
          cv.notify_one();
        },
        "setter");
    {
      std::unique_lock<mutex> l(mu);
      while (!flag.r())
        (void)cv.wait_for(l, std::chrono::milliseconds(1));
    }
    t.join();
  });
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_TRUE(rep.exhausted);
}

TEST(McCheckTest, AssertFailureCarriesSchedule) {
  auto rep = check([] {
    atomic<int> x(0, "x");
    thread t([&] { x.store(1); }, "setter");
    const int seen = x.load();
    t.join();
    MC_ASSERT(seen == 1);  // fails when the load ran first
  });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kAssert);
  EXPECT_NE(rep.violation.message.find("seen == 1"), std::string::npos);
  EXPECT_FALSE(rep.violation.schedule.empty());
}

TEST(McCheckTest, StepBudgetCatchesLivelock) {
  Options opts;
  opts.max_steps = 64;
  auto rep = check(
      [] {
        for (;;) this_thread::yield();
      },
      opts);
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kStepLimit);
}

// ---------------------------------------------------------------------------
// Memory-order modeling: publication via release/acquire vs. the broken
// variants (these mirror the seeded-mutation classes of llmp_mc).
// ---------------------------------------------------------------------------

TEST(McMemoryOrderTest, ReleaseAcquirePublicationIsClean) {
  auto rep = check([] {
    cell<int> data(0, "data");
    atomic<int> flag(0, "flag");
    thread t(
        [&] {
          data.w() = 42;
          flag.store(1, std::memory_order_release);
        },
        "pub");
    if (flag.load(std::memory_order_acquire) == 1) MC_ASSERT(data.r() == 42);
    t.join();
  });
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

TEST(McMemoryOrderTest, RelaxedStoreBreaksPublication) {
  auto rep = check([] {
    cell<int> data(0, "data");
    atomic<int> flag(0, "flag");
    thread t(
        [&] {
          data.w() = 42;
          flag.store(1, std::memory_order_relaxed);  // dropped release
        },
        "pub");
    if (flag.load(std::memory_order_acquire) == 1) (void)data.r();
    t.join();
  });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kDataRace);
}

TEST(McMemoryOrderTest, RelaxedLoadDropsTheAcquire) {
  auto rep = check([] {
    cell<int> data(0, "data");
    atomic<int> flag(0, "flag");
    thread t(
        [&] {
          data.w() = 42;
          flag.store(1, std::memory_order_release);
        },
        "pub");
    if (flag.load(std::memory_order_relaxed) == 1)  // dropped acquire
      (void)data.r();
    t.join();
  });
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kDataRace);
}

// ---------------------------------------------------------------------------
// Reduction and replay.
// ---------------------------------------------------------------------------

TEST(McReductionTest, IndependentOpsArePruned) {
  // Two tasks touching disjoint mutexes commute everywhere: sleep sets
  // should collapse the interleaving tree to a handful of executions.
  auto body = [] {
    mutex a("a"), b("b");
    thread t1(
        [&] {
          std::unique_lock<mutex> l(a);
        },
        "ta");
    thread t2(
        [&] {
          std::unique_lock<mutex> l(b);
        },
        "tb");
    t1.join();
    t2.join();
  };
  auto rep = check(body);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_TRUE(rep.exhausted);
  EXPECT_GE(rep.pruned, 1u);  // the reduction actually engaged
  EXPECT_LE(rep.executions, 64u);
}

TEST(McReplayTest, ViolationScheduleReproducesDeterministically) {
  auto body = [] {
    cell<int> x(0, "x");
    thread t([&] { x.w() = 1; }, "writer");
    x.w() = 2;
    t.join();
  };
  auto first = check(body);
  auto second = check(body);
  ASSERT_FALSE(first.ok);
  ASSERT_FALSE(second.ok);
  // Same body, same bounds -> byte-identical discovery.
  EXPECT_EQ(first.violation.schedule, second.violation.schedule);
  EXPECT_EQ(first.violation.message, second.violation.message);
  // And the recorded schedule replays to the same violation.
  Violation v = replay(body, first.violation.schedule);
  EXPECT_EQ(v.kind, ViolationKind::kDataRace);
  EXPECT_EQ(v.message, first.violation.message);
}

TEST(McReplayTest, CleanScheduleReplaysClean) {
  auto body = [] {
    mutex mu("mu");
    cell<int> n(0, "n");
    thread t(
        [&] {
          std::unique_lock<mutex> l(mu);
          n.w() += 1;
        },
        "inc");
    {
      std::unique_lock<mutex> l(mu);
      n.w() += 1;
    }
    t.join();
  };
  // An empty schedule forces default choices everywhere — a legal run.
  Violation v = replay(body, "");
  EXPECT_EQ(v.kind, ViolationKind::kNone);
}

TEST(McReplayTest, BogusScheduleReportsDivergence) {
  auto body = [] {
    atomic<int> x(0, "x");
    thread t([&] { x.store(1); }, "setter");
    (void)x.load();
    t.join();
  };
  Violation v = replay(body, "t6,t6,t6");
  EXPECT_EQ(v.kind, ViolationKind::kDivergence);
}

TEST(McCheckTest, OrderSeedStillFindsTheBug) {
  Options opts;
  opts.order_seed = 0x5eed;
  auto rep = check(
      [] {
        cell<int> x(0, "x");
        thread t([&] { x.w() = 1; }, "writer");
        x.w() = 2;
        t.join();
      },
      opts);
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.violation.kind, ViolationKind::kDataRace);
}

TEST(McCheckTest, NotifyOneWaiterChoiceIsExplored) {
  // Two waiters, one token: which waiter the notify wakes is a real
  // scheduling choice; with only one notify the other waiter must starve
  // in some branch — unless a second notify chains, as here.
  auto rep = check([] {
    mutex mu("mu");
    condition_variable cv("cv");
    cell<int> tokens(2, "tokens");
    auto consume = [&] {
      std::unique_lock<mutex> l(mu);
      while (tokens.r() == 0) cv.wait(l);
      tokens.w() -= 1;
    };
    thread t1(consume, "c1");
    thread t2(consume, "c2");
    {
      std::unique_lock<mutex> l(mu);
      cv.notify_all();
    }
    t1.join();
    t2.join();
    std::unique_lock<mutex> l(mu);
    MC_ASSERT(tokens.r() == 0);
  });
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

}  // namespace
}  // namespace llmp::mc
