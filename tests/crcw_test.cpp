// CRCW-mode demonstrations. The paper invokes the CRCW PRAM twice: table
// construction "in constant time using n processors on the CRCW model
// when k is greater than 4" (§2, after Match3), and the sub-logarithmic
// partial sums of [12]/[4] (out of scope, see DESIGN.md). Here the table
// construction's structure is reproduced at miniature scale on the
// tracked machine: one processor per (key, candidate-value) pair, each
// verifying its candidate independently; only verifying processors write,
// and all writers of one cell write the same value — exactly the
// CRCW-Common contract, at depth O(1) independent of the key count.
#include <gtest/gtest.h>

#include "core/lookup_table.h"
#include "pram/machine.h"

namespace llmp::core {
namespace {

TEST(Crcw, TableConstructionInConstantDepth) {
  const int b = 2, w = 2;  // 16 keys × 8 candidate values = 128 processors
  const BitRule rule = BitRule::kMostSignificant;
  const MatchingLookupTable reference(b, w, rule);
  const std::size_t keys = reference.cells();
  const label_t candidates = 8;

  // Two redundant verifier processors per (key, candidate): the correct
  // candidate's pair write the cell *concurrently with equal values* —
  // the CRCW-Common contract, which the tracked machine enforces.
  pram::Machine m(pram::Mode::kCRCWCommon, 256);
  std::vector<label_t> table(keys, kno_label);
  std::vector<std::uint8_t> valid(keys, 0);
  m.step(keys * candidates * 2, [&](std::size_t pid, auto&& mem) {
    const std::size_t slot = pid / 2;  // replica pair share a slot
    const label_t key = static_cast<label_t>(slot / candidates);
    const label_t cand = static_cast<label_t>(slot % candidates);
    // Local verification (processor-private work, as in the appendix).
    const label_t truth =
        MatchingLookupTable::collapse(reference.components(key), rule);
    if (cand != truth) return;
    mem.wr(table, static_cast<std::size_t>(key), cand);
    mem.wr(valid, static_cast<std::size_t>(key), std::uint8_t{1});
  });

  EXPECT_EQ(m.stats().depth, 1u);  // constant time, as the paper claims
  for (std::size_t key = 0; key < keys; ++key) {
    EXPECT_EQ(valid[key], 1u);
    EXPECT_EQ(table[key], reference.value(static_cast<label_t>(key)));
  }
}

TEST(Crcw, CommonModeRejectsConflictingConstruction) {
  // Negative control: a buggy "construction" where verifiers disagree
  // must be caught by the Common-mode checker.
  pram::Machine m(pram::Mode::kCRCWCommon, 8);
  std::vector<label_t> table(1, 0);
  EXPECT_THROW(m.step(2,
                      [&](std::size_t pid, auto&& mem) {
                        mem.wr(table, 0, static_cast<label_t>(pid));
                      }),
               pram::model_violation);
}

TEST(Crcw, PriorityModeResolvesRaces) {
  // The Priority variant (Snir's taxonomy) deterministically favours the
  // lowest-numbered processor — useful as a tie-breaker model; verify the
  // machine implements it independent of execution order.
  pram::Machine m(pram::Mode::kCRCWPriority, 8);
  std::vector<int> cell(1, -1);
  m.step(6, [&](std::size_t pid, auto&& mem) {
    if (pid >= 2) mem.wr(cell, 0, static_cast<int>(pid));
  });
  EXPECT_EQ(cell[0], 2);
}

}  // namespace
}  // namespace llmp::core
