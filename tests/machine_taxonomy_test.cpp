// The full violation taxonomy, mode by mode: for every Violation::Kind
// and every Mode, a minimal two-processor scenario that must (or must
// not) trigger it. Complements machine_test.cpp, which covers cost
// accounting and the throw/record policies; here the point is the exact
// matrix of Snir's taxonomy — which conflicts each PRAM variant forbids.
#include "pram/machine.h"

#include <gtest/gtest.h>

#include <vector>

namespace llmp::pram {
namespace {

using Kind = Violation::Kind;

/// Runs one 4-processor step of `body` under `mode` with recording and
/// returns the violations.
template <class Body>
std::vector<Violation> run(Mode mode, Body&& body) {
  Machine m(mode, 4, Machine::OnViolation::kRecord);
  m.step(4, body);
  return m.violations();
}

bool has_kind(const std::vector<Violation>& vs, Kind kind) {
  for (const Violation& v : vs)
    if (v.kind == kind) return true;
  return false;
}

// ---- kReadAfterWrite: forbidden in every mode. ---------------------------

TEST(MachineTaxonomy, ReadAfterWriteFlaggedInEveryMode) {
  for (Mode mode : {Mode::kEREW, Mode::kCREW, Mode::kCRCWCommon,
                    Mode::kCRCWArbitrary, Mode::kCRCWPriority}) {
    std::vector<int> a(2, 0);
    auto vs = run(mode, [&](std::size_t v, auto&& mem) {
      if (v == 0) mem.wr(a, 0, 1);
      if (v == 1) (void)mem.rd(a, 0);
    });
    EXPECT_TRUE(has_kind(vs, Kind::kReadAfterWrite)) << to_string(mode);
  }
}

TEST(MachineTaxonomy, SameProcessorReadModifyWriteLegalInEveryMode) {
  for (Mode mode : {Mode::kEREW, Mode::kCREW, Mode::kCRCWCommon,
                    Mode::kCRCWArbitrary, Mode::kCRCWPriority}) {
    std::vector<int> a(4, 0);
    auto vs = run(mode, [&](std::size_t v, auto&& mem) {
      mem.wr(a, v, mem.rd(a, v) + 1);
      mem.wr(a, v, mem.rd(a, v) + 1);  // and again: still the same proc
    });
    EXPECT_TRUE(vs.empty()) << to_string(mode);
  }
}

// ---- kConcurrentRead: EREW only. -----------------------------------------

TEST(MachineTaxonomy, ConcurrentReadFlaggedOnlyUnderErew) {
  for (Mode mode : {Mode::kEREW, Mode::kCREW, Mode::kCRCWCommon,
                    Mode::kCRCWArbitrary, Mode::kCRCWPriority}) {
    std::vector<int> a(2, 7);
    auto vs = run(mode, [&](std::size_t, auto&& mem) {
      (void)mem.rd(a, 0);  // all four processors read the same cell
    });
    if (mode == Mode::kEREW) {
      EXPECT_TRUE(has_kind(vs, Kind::kConcurrentRead));
    } else {
      EXPECT_TRUE(vs.empty()) << to_string(mode);
    }
  }
}

// ---- kReadWriteClash: EREW only. -----------------------------------------

TEST(MachineTaxonomy, ReadWriteClashFlaggedOnlyUnderErew) {
  // Proc 0 reads the cell, proc 1 later writes it. The read saw the old
  // value — consistent with a two-phase PRAM step — so only EREW (one
  // toucher per cell, full stop) objects.
  for (Mode mode : {Mode::kEREW, Mode::kCREW, Mode::kCRCWCommon,
                    Mode::kCRCWArbitrary, Mode::kCRCWPriority}) {
    std::vector<int> a(2, 0);
    auto vs = run(mode, [&](std::size_t v, auto&& mem) {
      if (v == 0) (void)mem.rd(a, 0);
      if (v == 1) mem.wr(a, 0, 5);
    });
    if (mode == Mode::kEREW) {
      EXPECT_TRUE(has_kind(vs, Kind::kReadWriteClash));
      EXPECT_FALSE(has_kind(vs, Kind::kReadAfterWrite));
    } else {
      EXPECT_TRUE(vs.empty()) << to_string(mode);
    }
  }
}

// ---- kConcurrentWrite: EREW/CREW always; Common only on disagreement. ----

TEST(MachineTaxonomy, EqualConcurrentWritesByMode) {
  for (Mode mode : {Mode::kEREW, Mode::kCREW, Mode::kCRCWCommon,
                    Mode::kCRCWArbitrary, Mode::kCRCWPriority}) {
    std::vector<int> a(2, 0);
    auto vs = run(mode, [&](std::size_t, auto&& mem) {
      mem.wr(a, 0, 42);  // everyone writes the same value
    });
    if (mode == Mode::kEREW || mode == Mode::kCREW) {
      EXPECT_TRUE(has_kind(vs, Kind::kConcurrentWrite)) << to_string(mode);
    } else {
      EXPECT_TRUE(vs.empty()) << to_string(mode);
    }
    EXPECT_EQ(a[0], 42) << to_string(mode);
  }
}

TEST(MachineTaxonomy, DifferingConcurrentWritesByMode) {
  for (Mode mode : {Mode::kEREW, Mode::kCREW, Mode::kCRCWCommon,
                    Mode::kCRCWArbitrary, Mode::kCRCWPriority}) {
    std::vector<int> a(2, -1);
    auto vs = run(mode, [&](std::size_t v, auto&& mem) {
      mem.wr(a, 0, static_cast<int>(v));  // everyone writes its own id
    });
    const bool crcw_free = mode == Mode::kCRCWArbitrary ||
                           mode == Mode::kCRCWPriority;
    if (crcw_free) {
      EXPECT_TRUE(vs.empty()) << to_string(mode);
    } else {
      EXPECT_TRUE(has_kind(vs, Kind::kConcurrentWrite)) << to_string(mode);
    }
  }
}

// ---- CRCW resolution semantics. ------------------------------------------

TEST(MachineTaxonomy, PriorityLowestProcessorWins) {
  // Procs 1..3 write the cell (0 abstains): proc 1's value must survive,
  // even though procs 2 and 3 execute after it and write "over" it.
  std::vector<int> a(2, -1);
  auto vs = run(Mode::kCRCWPriority, [&](std::size_t v, auto&& mem) {
    if (v >= 1) mem.wr(a, 0, static_cast<int>(10 * v));
  });
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(a[0], 10);
}

TEST(MachineTaxonomy, PriorityIsPerCell) {
  // Different cells resolve independently: each keeps its own lowest
  // writer's value.
  std::vector<int> a(2, -1);
  auto vs = run(Mode::kCRCWPriority, [&](std::size_t v, auto&& mem) {
    mem.wr(a, v % 2, static_cast<int>(v));  // cell0: {0,2}, cell1: {1,3}
  });
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 1);
}

TEST(MachineTaxonomy, ArbitraryPicksSomeWrittenValue) {
  std::vector<int> a(2, -1);
  auto vs = run(Mode::kCRCWArbitrary, [&](std::size_t v, auto&& mem) {
    mem.wr(a, 0, static_cast<int>(v + 100));
  });
  EXPECT_TRUE(vs.empty());
  EXPECT_GE(a[0], 100);
  EXPECT_LE(a[0], 103);
}

TEST(MachineTaxonomy, CommonKeepsTheAgreedValue) {
  std::vector<int> a(2, -1);
  auto vs = run(Mode::kCRCWCommon, [&](std::size_t, auto&& mem) {
    mem.wr(a, 0, 9);
  });
  EXPECT_TRUE(vs.empty());
  EXPECT_EQ(a[0], 9);
}

// ---- Metadata carried by a violation. ------------------------------------

TEST(MachineTaxonomy, ViolationRecordsCellStepAndProcessors) {
  Machine m(Mode::kEREW, 4, Machine::OnViolation::kRecord);
  std::vector<int> a(4, 0);
  m.step(4, [&](std::size_t v, auto&& mem) { mem.wr(a, v, 1); });  // clean
  m.step(2, [&](std::size_t, auto&& mem) { (void)mem.rd(a, 3); });
  ASSERT_EQ(m.violations().size(), 1u);
  const Violation& v = m.violations().front();
  EXPECT_EQ(v.kind, Kind::kConcurrentRead);
  EXPECT_EQ(v.cell, 3u);
  EXPECT_EQ(v.step, 2u);
  EXPECT_EQ(v.proc_a, 1u);  // the second reader flags against…
  EXPECT_EQ(v.proc_b, 0u);  // …the first
}

}  // namespace
}  // namespace llmp::pram
