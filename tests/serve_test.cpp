// Semantics of the serve layer (src/serve): queue backpressure, deadline
// and cancellation handling, graceful drain, concurrent correctness, and
// the zero-steady-state-allocation guarantee across worker Contexts.
//
// This binary instruments global operator new (like context_test.cpp) so
// ServiceStats::steady_allocs counts for real. Tests that need a held
// worker or a full queue use the on_dequeue hook to park workers on a
// latch — no sleeps-as-synchronization.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <future>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "llmp.h"
#include "serve/queue.h"
#include "support/alloc_counter.h"
#include "support/failpoint.h"

void* operator new(std::size_t size) {
  llmp::support::note_alloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// Nothrow forms too: libstdc++ internals (std::get_temporary_buffer) pair
// new(nothrow) with plain delete, which must land on the same allocator.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  llmp::support::note_alloc();
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace llmp {
namespace {

using core::MatchResult;
using serve::OverflowPolicy;
using serve::Request;
using serve::Service;
using serve::ServiceOptions;
using serve::ServiceStats;

list::LinkedList make_list(std::size_t n, std::uint64_t seed = 42) {
  return list::generators::random_list(n, seed);
}

/// A gate the on_dequeue hook can park workers on: tests open it to
/// release every held worker.
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_entered_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  /// Block until `k` workers are parked on the gate.
  void await_waiting(int k) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_entered_.wait(lock, [&] { return waiting_ >= k; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable cv_entered_;
  int waiting_ = 0;
  bool open_ = false;
};

// ---- BoundedQueue unit tests. ----------------------------------------------

TEST(BoundedQueue, FifoWithinCapacity) {
  serve::BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(q.try_push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(q.try_push(overflow));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  serve::BoundedQueue<int> q(4);
  int v = 7;
  ASSERT_TRUE(q.try_push(v));
  q.close();
  int rejected = 8;
  EXPECT_FALSE(q.try_push(rejected));  // closed: no new work
  EXPECT_EQ(q.pop(), 7);               // …but queued work drains
  EXPECT_EQ(q.pop(), std::nullopt);    // then the shutdown signal
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  serve::BoundedQueue<int> q(1);
  int v = 1;
  ASSERT_TRUE(q.try_push(v));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });  // blocks: full
  q.close();
  producer.join();
}

// ---- Submit correctness. ---------------------------------------------------

TEST(Serve, SubmitMatchesDirectRunAndVerifies) {
  const auto lst = make_list(5000);
  Service svc({.workers = 2});
  auto fut = svc.submit({.list = &lst, .algorithm = "match4"});
  Result<MatchResult> r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(core::verify::matching_status(lst, r->in_matching).ok());
  EXPECT_TRUE(core::verify::maximal_status(lst, r->in_matching).ok());

  // Same edges as a direct single-threaded run (the algorithms are
  // deterministic).
  llmp::Context ctx;
  const auto direct = llmp::run(ctx, "match4", lst);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(r->edges, direct->edges);
  EXPECT_EQ(r->in_matching, direct->in_matching);
}

TEST(Serve, BlockedBudgetRequestMatchesFlatBesideIt) {
  // One blocked (budgeted) and one flat request on the same workers: the
  // out-of-core path must return the same matching the flat sequential
  // path does, and the engine's cost surface must ride the metrics the
  // flat result carries (cost/phases are part of MatchResult equality).
  const auto lst = make_list(20000);
  Service svc({.workers = 2});
  auto blocked_fut = svc.submit({.list = &lst,
                                 .algorithm = "sequential",
                                 .memory_budget_bytes = 64 * 1024});
  auto flat_fut = svc.submit({.list = &lst, .algorithm = "sequential"});
  Result<MatchResult> blocked = blocked_fut.get();
  Result<MatchResult> flat = flat_fut.get();
  ASSERT_TRUE(blocked.ok()) << blocked.status().to_string();
  ASSERT_TRUE(flat.ok()) << flat.status().to_string();
  EXPECT_EQ(blocked->in_matching, flat->in_matching);
  EXPECT_EQ(blocked->edges, flat->edges);
  EXPECT_EQ(blocked->cost.work, flat->cost.work);
  EXPECT_TRUE(core::verify::maximal_status(lst, blocked->in_matching).ok());
}

TEST(Serve, BudgetWithNonSequentialAlgorithmIsInvalidArgument) {
  // The block engine natively runs the greedy sequential walk; a budget
  // on any other algorithm is a contract violation caught at submit.
  const auto lst = make_list(1000);
  Service svc({.workers = 1});
  auto fut = svc.submit({.list = &lst,
                         .algorithm = "match4",
                         .memory_budget_bytes = 64 * 1024});
  const Result<MatchResult> r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The rejection happened before the queue: nothing was submitted.
  EXPECT_EQ(svc.stats().submitted, 0u);
}

TEST(Serve, SubmitBatchConcurrentCorrectness) {
  // Different algorithms and lists in flight at once; every result must
  // verify against its own list.
  std::vector<list::LinkedList> lists;
  for (std::uint64_t s = 0; s < 6; ++s) lists.push_back(make_list(2000, s));
  const char* algs[] = {"match1", "match2", "match3", "match4", "sequential"};

  Service svc({.workers = 4});
  std::vector<Request> reqs;
  for (std::size_t k = 0; k < 60; ++k)
    reqs.push_back({.list = &lists[k % lists.size()],
                    .algorithm = algs[k % 5]});
  auto futs = svc.submit_batch(std::move(reqs));
  ASSERT_EQ(futs.size(), 60u);
  for (std::size_t k = 0; k < futs.size(); ++k) {
    Result<MatchResult> r = futs[k].get();
    ASSERT_TRUE(r.ok()) << "request " << k << ": " << r.status().to_string();
    const auto& lst = lists[k % lists.size()];
    EXPECT_TRUE(core::verify::matching_status(lst, r->in_matching).ok());
    EXPECT_TRUE(core::verify::maximal_status(lst, r->in_matching).ok());
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 60u);
  EXPECT_EQ(st.completed, 60u);
  EXPECT_EQ(st.ok, 60u);
}

TEST(Serve, VerifyOptionAuditsResults) {
  const auto lst = make_list(1000);
  Service svc({.workers = 1, .verify = true});
  Result<MatchResult> r = svc.submit({.list = &lst}).get();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
}

// ---- Bad requests fail fast. -----------------------------------------------

TEST(Serve, UnknownAlgorithmIsNotFound) {
  const auto lst = make_list(100);
  Service svc({.workers = 1});
  Result<MatchResult> r =
      svc.submit({.list = &lst, .algorithm = "match99"}).get();
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Serve, InvalidOptionsAreInvalidArgument) {
  const auto lst = make_list(100);
  Service svc({.workers = 1});
  core::MatchOptions bad;
  bad.algorithm = core::Algorithm::kMatch4;
  bad.i_parameter = -3;
  Result<MatchResult> r = svc.submit({.list = &lst, .options = bad}).get();
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  Result<MatchResult> null_list = svc.submit({.list = nullptr}).get();
  EXPECT_EQ(null_list.status().code(), StatusCode::kInvalidArgument);
}

// ---- Backpressure. ---------------------------------------------------------

TEST(Serve, RejectPolicyShedsLoadWhenFull) {
  const auto lst = make_list(500);
  Gate gate;
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 2;
  opt.overflow = OverflowPolicy::kReject;
  opt.on_dequeue = [&](std::size_t) { gate.wait(); };
  Service svc(opt);

  // First request parks the worker; two more fill the queue; the fourth
  // must be shed with kResourceExhausted.
  auto f0 = svc.submit({.list = &lst});
  gate.await_waiting(1);
  auto f1 = svc.submit({.list = &lst});
  auto f2 = svc.submit({.list = &lst});
  auto f3 = svc.submit({.list = &lst});
  EXPECT_EQ(f3.get().status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(svc.stats().rejected, 1u);

  gate.open();
  EXPECT_TRUE(f0.get().ok());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
}

TEST(Serve, BlockPolicyAppliesBackpressure) {
  const auto lst = make_list(500);
  Gate gate;
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  opt.overflow = OverflowPolicy::kBlock;
  opt.on_dequeue = [&](std::size_t) { gate.wait(); };
  Service svc(opt);

  auto f0 = svc.submit({.list = &lst});  // parks the worker
  gate.await_waiting(1);
  auto f1 = svc.submit({.list = &lst});  // fills the queue

  // The next submit must block until the gate opens and a slot frees.
  std::atomic<bool> submitted{false};
  std::future<Result<MatchResult>> f2;
  std::thread submitter([&] {
    f2 = svc.submit({.list = &lst});
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());  // still blocked on the full queue

  gate.open();
  submitter.join();
  EXPECT_TRUE(submitted.load());
  EXPECT_TRUE(f0.get().ok());
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
}

// ---- Deadlines and cancellation. -------------------------------------------

TEST(Serve, DeadlineExpiryMidQueue) {
  const auto lst = make_list(500);
  Gate gate;
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 8;
  opt.on_dequeue = [&](std::size_t) { gate.wait(); };
  Service svc(opt);

  auto running = svc.submit({.list = &lst});  // parks the worker
  gate.await_waiting(1);
  // Queued behind the parked worker with an already-tight deadline.
  auto doomed = svc.submit(
      {.list = &lst,
       .deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(1)});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.open();
  EXPECT_TRUE(running.get().ok());
  EXPECT_EQ(doomed.get().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc.stats().expired, 1u);
}

TEST(Serve, CancellationMidQueue) {
  const auto lst = make_list(500);
  Gate gate;
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 8;
  opt.on_dequeue = [&](std::size_t) { gate.wait(); };
  Service svc(opt);

  auto running = svc.submit({.list = &lst});
  gate.await_waiting(1);
  serve::CancelToken token = serve::make_cancel_token();
  auto cancelled = svc.submit({.list = &lst, .cancel = token});
  token->store(true);  // cancel while still queued
  gate.open();
  EXPECT_TRUE(running.get().ok());
  EXPECT_EQ(cancelled.get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

// ---- Shutdown. -------------------------------------------------------------

TEST(Serve, ShutdownDrainsAcceptedWork) {
  const auto lst = make_list(2000);
  Service svc({.workers = 2, .queue_capacity = 64});
  std::vector<std::future<Result<MatchResult>>> futs;
  for (int k = 0; k < 20; ++k) futs.push_back(svc.submit({.list = &lst}));
  svc.shutdown();  // returns only after every accepted request completes
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(svc.stats().completed, 20u);
  EXPECT_EQ(svc.stats().queue_depth, 0u);
}

TEST(Serve, SubmitAfterShutdownIsUnavailable) {
  const auto lst = make_list(100);
  Service svc({.workers = 1});
  svc.shutdown();
  Result<MatchResult> r = svc.submit({.list = &lst}).get();
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  svc.shutdown();  // idempotent
}

TEST(Serve, DestructorDrains) {
  const auto lst = make_list(1000);
  std::vector<std::future<Result<MatchResult>>> futs;
  {
    Service svc({.workers = 2});
    for (int k = 0; k < 8; ++k) futs.push_back(svc.submit({.list = &lst}));
  }  // ~Service == shutdown(): every future below must be ready and OK
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
}

// ---- Stats and the steady-state allocation guarantee. ----------------------

TEST(Serve, StatsCountLatencyAndQueueDepth) {
  const auto lst = make_list(1000);
  Service svc({.workers = 2});
  std::vector<std::future<Result<MatchResult>>> futs;
  for (int k = 0; k < 10; ++k) futs.push_back(svc.submit({.list = &lst}));
  for (auto& f : futs) ASSERT_TRUE(f.get().ok());
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 10u);
  EXPECT_EQ(st.completed, 10u);
  EXPECT_EQ(st.ok, 10u);
  EXPECT_EQ(st.workers, 2u);
  EXPECT_GT(st.p50_latency_us, 0u);
  EXPECT_GE(st.p99_latency_us, st.p50_latency_us);
  EXPECT_GT(st.arena_takes, 0u);
}

TEST(Serve, SteadyStateAllocationsAreZeroAfterWarmup) {
  // Same-size lists cycling through warm workers: after warmup and a
  // stats reset, the in-scope allocation counter must not move. Covers
  // match2 and match3 too (their buffers are plan-presized and the lookup
  // table is served from the process-wide cache).
  std::vector<list::LinkedList> lists;
  for (std::uint64_t s = 0; s < 4; ++s) lists.push_back(make_list(3000, s));
  const char* algs[] = {"match1", "match2", "match3", "match4"};

  Service svc({.workers = 2});
  auto fire = [&](int count) {
    std::vector<std::future<Result<MatchResult>>> futs;
    for (int k = 0; k < count; ++k)
      futs.push_back(svc.submit({.list = &lists[k % lists.size()],
                                 .algorithm = algs[k % 4]}));
    for (auto& f : futs) ASSERT_TRUE(f.get().ok());
  };
  fire(48);  // warm both workers across all four algorithms
  svc.reset_stats();
  fire(40);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.steady_allocs, 0u)
      << "warm serve requests must not allocate in the algorithm body";
  EXPECT_EQ(st.arena_takes, st.arena_hits)
      << "every warm scratch lease must come from the pool";
}

// ---- Resilience: supervision, retries, watchdog, degradation. --------------

namespace fp = support::failpoint;

/// Resilience tests arm failpoints; every one of them must leave the
/// process clean (other tests in this binary assert fault-free behavior).
class ServeResilience : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }

  static bool poll_until(const std::function<bool()>& pred,
                         std::chrono::milliseconds limit) {
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < limit) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }
};

TEST_F(ServeResilience, WorkerSurvivesThrowingRequest) {
  // An exception escaping a request fails that future — retryably, with
  // the injected code — and the worker keeps serving (the silent-death
  // regression test: before supervision, the second future never became
  // ready).
  const auto lst = make_list(500);
  Service svc({.workers = 1});
  ASSERT_TRUE(fp::arm_from_string("serve.worker.run=throw:n=1").ok());

  auto doomed = svc.submit({.list = &lst});
  auto healthy = svc.submit({.list = &lst});
  const Status s = doomed.get().status();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.retryable());
  EXPECT_TRUE(healthy.get().ok()) << "worker died with the request";

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.restarts, 1u);  // context rebuilt after the escape
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.quarantined, 0u);  // retries were not configured
}

TEST_F(ServeResilience, RetrySucceedsAfterTransientFault) {
  const auto lst = make_list(500);
  ServiceOptions opt;
  opt.workers = 1;
  opt.retry = {.max_attempts = 3,
               .backoff_base = std::chrono::milliseconds(1),
               .backoff_max = std::chrono::milliseconds(4)};
  Service svc(opt);
  ASSERT_TRUE(
      fp::arm_from_string("serve.worker.run=status(unavailable):n=2").ok());

  Result<MatchResult> r = svc.submit({.list = &lst}).get();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(core::verify::matching_status(lst, r->in_matching).ok());

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.retries, 2u);
  EXPECT_EQ(st.ok, 1u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.quarantined, 0u);
  EXPECT_EQ(st.restarts, 0u);  // a status rule does not escape
}

TEST_F(ServeResilience, QuarantineAfterMaxAttempts) {
  const auto lst = make_list(500);
  ServiceOptions opt;
  opt.workers = 1;
  opt.retry = {.max_attempts = 2,
               .backoff_base = std::chrono::milliseconds(1),
               .backoff_max = std::chrono::milliseconds(2)};
  Service svc(opt);
  ASSERT_TRUE(fp::arm_from_string("serve.worker.run=status(internal)").ok());

  Result<MatchResult> r = svc.submit({.list = &lst}).get();
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.retries, 1u);      // one retry was granted…
  EXPECT_EQ(st.quarantined, 1u);  // …then the request was given up on
  EXPECT_EQ(st.failed, 1u);
}

TEST_F(ServeResilience, ShutdownDuringWorkerRestarts) {
  // Injected pop faults fire before any item is dequeued, so a shutdown
  // racing a storm of worker restarts still drains every accepted
  // request.
  const auto lst = make_list(500);
  Service svc({.workers = 2, .queue_capacity = 32});
  ASSERT_TRUE(fp::arm_from_string("serve.queue.pop=throw:p=0.5").ok());

  std::vector<std::future<Result<MatchResult>>> futs;
  for (int k = 0; k < 20; ++k) futs.push_back(svc.submit({.list = &lst}));
  svc.shutdown();
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(svc.stats().completed, 20u);
}

TEST_F(ServeResilience, CancelDuringRetryBackoff) {
  const auto lst = make_list(500);
  ServiceOptions opt;
  opt.workers = 1;
  opt.retry = {.max_attempts = 3,
               .backoff_base = std::chrono::milliseconds(200),
               .backoff_max = std::chrono::milliseconds(200)};
  Service svc(opt);
  ASSERT_TRUE(
      fp::arm_from_string("serve.worker.run=status(unavailable):n=1").ok());

  serve::CancelToken token = serve::make_cancel_token();
  auto fut = svc.submit({.list = &lst, .cancel = token});
  ASSERT_TRUE(poll_until([&] { return svc.stats().retries >= 1; },
                         std::chrono::seconds(10)))
      << "first attempt never failed into a retry";
  token->store(true);  // cancel while the request waits out its backoff
  EXPECT_EQ(fut.get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST_F(ServeResilience, DeadlineExpiresWhileQueuedForRetry) {
  const auto lst = make_list(500);
  ServiceOptions opt;
  opt.workers = 1;
  opt.retry = {.max_attempts = 3,
               .backoff_base = std::chrono::milliseconds(300),
               .backoff_max = std::chrono::milliseconds(300)};
  Service svc(opt);
  ASSERT_TRUE(fp::arm_from_string("serve.worker.run=status(unavailable)").ok());

  // The backoff (>=300ms) outlives the deadline (50ms): whether the
  // deadline passes in the queue or in the retry park, the future must
  // expire, never hang or exhaust attempts as kUnavailable.
  auto fut = svc.submit({.list = &lst,
                         .deadline = std::chrono::steady_clock::now() +
                                     std::chrono::milliseconds(50)});
  EXPECT_EQ(fut.get().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc.stats().expired, 1u);
}

TEST_F(ServeResilience, ShutdownFlushesPendingRetries) {
  const auto lst = make_list(500);
  ServiceOptions opt;
  opt.workers = 1;
  opt.retry = {.max_attempts = 2,
               .backoff_base = std::chrono::seconds(10),
               .backoff_max = std::chrono::seconds(10)};
  Service svc(opt);
  ASSERT_TRUE(
      fp::arm_from_string("serve.worker.run=status(internal):n=1").ok());

  auto fut = svc.submit({.list = &lst});
  ASSERT_TRUE(poll_until([&] { return svc.stats().retries >= 1; },
                         std::chrono::seconds(10)));
  const auto t0 = std::chrono::steady_clock::now();
  svc.shutdown();  // must not wait out the 10s backoff
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fut.get().status().code(), StatusCode::kInternal);  // last error
}

TEST_F(ServeResilience, WatchdogReplacesWedgedWorker) {
  // No failpoints: the first request wedges its worker on a gate; the
  // watchdog must retire that worker and spawn a replacement that serves
  // the rest. The wedged request still completes once the gate opens.
  const auto lst = make_list(500);
  Gate gate;
  std::atomic<int> dequeues{0};
  ServiceOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 8;
  opt.wedge_threshold = std::chrono::milliseconds(30);
  opt.supervisor_period = std::chrono::milliseconds(5);
  opt.on_dequeue = [&](std::size_t) {
    if (dequeues.fetch_add(1) == 0) gate.wait();  // wedge the first only
  };
  Service svc(opt);

  auto wedged = svc.submit({.list = &lst});
  gate.await_waiting(1);
  std::vector<std::future<Result<MatchResult>>> rest;
  for (int k = 0; k < 3; ++k) rest.push_back(svc.submit({.list = &lst}));
  // The replacement worker (not the wedged one) must finish these.
  for (auto& f : rest) EXPECT_TRUE(f.get().ok());
  EXPECT_GE(svc.stats().watchdog_fires, 1u);
  EXPECT_EQ(svc.stats().workers, 1u);  // slot count is stable

  gate.open();
  EXPECT_TRUE(wedged.get().ok());  // late, not lost
  svc.shutdown();                  // joins the retired thread too
  EXPECT_EQ(svc.stats().completed, 4u);
}

TEST_F(ServeResilience, DegradesToSequentialAndKeepsServing) {
  // Acceptance scenario: match3's table build fails permanently; with
  // retries + degradation on, every client still gets a correct matching
  // (served by `sequential`) and no future ever errors.
  const auto lst = make_list(3000);
  ServiceOptions opt;
  opt.workers = 1;
  opt.retry = {.max_attempts = 4,
               .backoff_base = std::chrono::milliseconds(1),
               .backoff_max = std::chrono::milliseconds(4)};
  opt.degrade = {.enabled = true,
                 .after_consecutive_failures = 1,
                 .probe_every = 8};
  Service svc(opt);
  ASSERT_TRUE(fp::arm_from_string("core.match3.table=throw").ok());

  std::vector<std::future<Result<MatchResult>>> futs;
  for (int k = 0; k < 12; ++k)
    futs.push_back(svc.submit({.list = &lst, .algorithm = "match3"}));
  for (auto& f : futs) {
    Result<MatchResult> r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_TRUE(core::verify::matching_status(lst, r->in_matching).ok());
    EXPECT_TRUE(core::verify::maximal_status(lst, r->in_matching).ok());
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.ok, 12u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.quarantined, 0u);
  EXPECT_GT(st.degraded, 0u) << "fallback never engaged";

  // Fault cleared: a probe eventually restores the real algorithm.
  fp::disarm_all();
  std::vector<std::future<Result<MatchResult>>> after;
  for (int k = 0; k < 20; ++k)
    after.push_back(svc.submit({.list = &lst, .algorithm = "match3"}));
  for (auto& f : after) EXPECT_TRUE(f.get().ok());
  const ServiceStats st2 = svc.stats();
  EXPECT_EQ(st2.failed, 0u);
}

}  // namespace
}  // namespace llmp
