// llmp_lint — static checker for the project's PRAM step discipline.
//
// The dynamic verifier (pram::Machine) proves discipline on the concrete
// sizes a test happens to run; this linter enforces the *source-level*
// rules that make those runs representative, over every file in the tree:
//
//   step-raw-index        Inside an `exec.step(...)` lambda body, a shared
//                         vector (one that the body accesses through the
//                         Mem accessor) is also indexed directly
//                         (`vec[i]`), bypassing rd/wr tracking.
//   step-ref-capture      A step lambda explicitly captures a shared
//                         vector by mutable reference (`[&vec]`) — shared
//                         state must flow through the accessor instead.
//   step-read-after-write Within one step body, `m.rd(vec, …)` appears
//                         after `m.wr(vec, …)` on the same buffer: the
//                         double-buffer discipline requires a step's reads
//                         and writes to target distinct buffers (or at
//                         least read-before-write program order; a read
//                         nested inside the write expression is fine).
//   header-pragma-once    A header lacks `#pragma once`, or the pragma
//                         appears after the first #include.
//   include-order         Includes break the project order: headers list
//                         <system> includes then "project" includes, each
//                         block alphabetically sorted; .cpp files may lead
//                         with their primary "own" header.
//   unchecked-index       A function subscripts a std::vector parameter
//                         without any LLMP_CHECK/LLMP_DCHECK guard in its
//                         body (src/ only).
//   serve-raw-sync        A file under src/serve/ names a raw std sync
//                         primitive (std::atomic / std::mutex /
//                         std::condition_variable / std::thread /
//                         std::this_thread, and friends) outside
//                         serve/sync_policy.h. Serve code must spell its
//                         synchronisation through a Sync policy so the
//                         same source compiles against the mc:: shims and
//                         stays model-checkable (docs/MODELCHECK.md).
//   storage-access        A file under src/ outside src/list/ and
//                         src/engine/ subscripts a successor/predecessor
//                         array directly (`next[v]`, `succ[v]`, `pred[v]`,
//                         `suc[v]`). List storage is a policy behind
//                         list::LinkedList and the block engine; raw
//                         subscripts bake the flat layout into call sites
//                         that must stay storage-agnostic. Use the
//                         accessors (list.next(v), predecessors()) or a
//                         differently named local. Passing the array
//                         whole (`m.rd(next, v)`) is fine — only the
//                         subscript is load-bearing.
//   raw-intrinsic         A file outside src/pram/ names a hardware
//                         intrinsic directly: `__builtin_prefetch`, an
//                         `_mm*` / `_mm256*` / `_mm512*` vector intrinsic,
//                         an `__m128`/`__m256`/`__m512` vector type, or an
//                         `*intrin.h` include. Prefetch and SIMD are
//                         runtime-dispatched policies behind
//                         pram/prefetch.h and pram/simd.h so every call
//                         site keeps its portable scalar fallback and the
//                         forced-scalar differential suite stays honest;
//                         a raw intrinsic at a call site silently forks
//                         the fast path from the referee'd one.
//   failpoint-name        An LLMP_FAILPOINT / LLMP_FAILPOINT_STATUS site
//                         whose name literal is not `file.scope.event`
//                         (exactly three lowercase [a-z0-9_] segments), or
//                         — across the whole linted tree — a name armed at
//                         more than one site (names key a process-wide
//                         registry; a duplicate makes chaos schedules and
//                         counter reconciliation ambiguous).
//
// Scope: the three step-discipline rules are skipped under src/serve/ —
// the serve layer runs real host threads (mutexes, atomics, futures), not
// PRAM step bodies, so those rules have no subject there; header and
// guard rules still apply. Everything under src/core/ and src/pram/ stays
// fully checked.
//
// A finding on a given line can be suppressed with a trailing
// `// lint:allow(rule-id)` comment (`lint:allow(*)` allows everything).
// Detection is purely lexical: no macro expansion, no template
// instantiation — see docs/ANALYSIS.md for the soundness discussion.
#pragma once

#include <string>
#include <vector>

namespace llmp::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct Options {
  bool check_steps = true;    // step-raw-index / step-ref-capture / RAW
  bool check_headers = true;  // header-pragma-once / include-order
  bool check_guards = true;   // unchecked-index (applied under src/ only)
  bool check_failpoints = true;  // failpoint-name (uniqueness needs lint_tree)
  bool check_serve_sync = true;  // serve-raw-sync (applied under src/serve/)
  bool check_storage = true;  // storage-access (src/ minus list/ + engine/)
  bool check_intrinsics = true;  // raw-intrinsic (everywhere but src/pram/)
};

/// Every rule id the linter can emit, in a stable order.
const std::vector<std::string>& all_rule_ids();

/// Lint one translation unit given its contents; `path` feeds diagnostics
/// and selects header-vs-source rule variants.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& text,
                                 const Options& opt = {});

/// Lint a file from disk. An unreadable file yields one "io" finding.
std::vector<Finding> lint_file(const std::string& path,
                               const Options& opt = {});

/// Recursively lint every .h/.cpp/.cc under each root (files may also be
/// passed directly). Results are sorted and deterministic.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& opt = {});

/// "path:line: [rule] message" — the CLI/CI diagnostic form.
std::string format_finding(const Finding& f);

}  // namespace llmp::lint
