#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.h"

namespace llmp::lint {
namespace {

// ---------------------------------------------------------------------------
// Token-stream helpers.
// ---------------------------------------------------------------------------

/// Index of the token matching the opener at `open` ('(' / '[' / '{'),
/// or tokens.size()-1 (the kEnd token) when unbalanced.
std::size_t match_close(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "(" || toks[i].text == "[" || toks[i].text == "{")
      ++depth;
    else if (toks[i].text == ")" || toks[i].text == "]" ||
             toks[i].text == "}") {
      --depth;
      if (depth == 0 && toks[i].text == close) return i;
    }
  }
  return toks.size() - 1;
}

/// Greedy parse of a member path `ident(.ident)*` starting at `i`; returns
/// the dotted path and leaves `*next` one past its last token. Returns ""
/// when toks[i] is not an identifier.
std::string parse_path(const std::vector<Token>& toks, std::size_t i,
                       std::size_t* next) {
  if (!toks[i].ident()) {
    *next = i + 1;
    return "";
  }
  std::string path = toks[i].text;
  std::size_t j = i + 1;
  while (j + 1 < toks.size() && toks[j].is(".") && toks[j + 1].ident()) {
    path += '.';
    path += toks[j + 1].text;
    j += 2;
  }
  *next = j;
  return path;
}

std::string root_of(const std::string& path) {
  const std::size_t dot = path.find('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

bool is_control_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "do" ||
         t == "else";
}

// ---------------------------------------------------------------------------
// Step-lambda extraction.
// ---------------------------------------------------------------------------

struct StepBody {
  std::size_t begin = 0, end = 0;  // token range of the body, exclusive
  std::string accessor;            // name of the lambda's 2nd parameter
  int line = 0;                    // line of the lambda
  std::vector<std::pair<std::string, int>> ref_captures;  // (name, line)
};

/// Split the token range [begin, end) by top-level commas.
std::vector<std::pair<std::size_t, std::size_t>> split_commas(
    const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  int depth = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
    if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
    if (t == "," && depth == 0) {
      parts.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < end) parts.emplace_back(start, end);
  return parts;
}

/// Find every `*.step(...)` call and extract its lambda body, accessor
/// parameter name, and explicit by-reference captures.
std::vector<StepBody> find_step_bodies(const std::vector<Token>& toks) {
  std::vector<StepBody> bodies;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(toks[i].is(".") && toks[i + 1].text == "step" &&
          toks[i + 2].is("(")))
      continue;
    const std::size_t call_end = match_close(toks, i + 2);
    // Locate the lambda introducer: a '[' directly after '(' or ','.
    std::size_t lb = toks.size();
    for (std::size_t j = i + 3; j < call_end; ++j) {
      if (toks[j].is("[") &&
          (toks[j - 1].is("(") || toks[j - 1].is(","))) {
        lb = j;
        break;
      }
    }
    if (lb == toks.size()) continue;
    StepBody body;
    body.line = toks[lb].line;
    const std::size_t cap_end = match_close(toks, lb);
    for (const auto& [cb, ce] : split_commas(toks, lb + 1, cap_end)) {
      if (ce - cb >= 2 && toks[cb].is("&") && toks[cb + 1].ident())
        body.ref_captures.emplace_back(toks[cb + 1].text,
                                       toks[cb + 1].line);
    }
    if (!toks[cap_end + 1].is("(")) continue;  // capture-only lambda
    const std::size_t par_end = match_close(toks, cap_end + 1);
    const auto params = split_commas(toks, cap_end + 2, par_end);
    if (params.size() >= 2) {
      // The accessor is the 2nd parameter's name: its last identifier
      // (`auto&& m`); an unnamed parameter leaves the accessor empty.
      const auto& [pb, pe] = params[1];
      for (std::size_t j = pe; j-- > pb;) {
        if (toks[j].ident() && toks[j].text != "auto") {
          body.accessor = toks[j].text;
          break;
        }
        if (toks[j].ident()) break;  // `auto` directly: unnamed
      }
    }
    // Skip qualifiers (mutable, noexcept, -> T) up to the body brace.
    std::size_t brace = par_end + 1;
    while (brace < call_end && !toks[brace].is("{")) ++brace;
    if (brace >= call_end) continue;
    body.begin = brace + 1;
    body.end = match_close(toks, brace);
    bodies.push_back(std::move(body));
    i = brace;  // resume inside; nested step calls would still be found
  }
  return bodies;
}

// ---------------------------------------------------------------------------
// Step-body rules.
// ---------------------------------------------------------------------------

struct AccessorEvent {
  bool is_write = false;
  std::string path;       // first-argument buffer path, e.g. "lay.cell_node"
  std::size_t start = 0;  // token index of the accessor identifier
  std::size_t end = 0;    // token index of the call's closing ')'
  int line = 0;
};

std::vector<AccessorEvent> collect_events(const std::vector<Token>& toks,
                                          const StepBody& body) {
  std::vector<AccessorEvent> events;
  if (body.accessor.empty()) return events;
  for (std::size_t i = body.begin; i + 3 < body.end; ++i) {
    if (!(toks[i].ident() && toks[i].text == body.accessor)) continue;
    if (i > 0 && toks[i - 1].is(".")) continue;  // member named like it
    if (!toks[i + 1].is(".")) continue;
    const std::string& fn = toks[i + 2].text;
    if (fn != "rd" && fn != "wr") continue;
    if (!toks[i + 3].is("(")) continue;
    AccessorEvent e;
    e.is_write = fn == "wr";
    e.start = i;
    e.end = match_close(toks, i + 3);
    e.line = toks[i].line;
    std::size_t next = 0;
    e.path = parse_path(toks, i + 4, &next);
    events.push_back(std::move(e));
  }
  return events;
}

void check_step_rules(const std::string& path, const std::vector<Token>& toks,
                      std::vector<Finding>& findings) {
  for (const StepBody& body : find_step_bodies(toks)) {
    const std::vector<AccessorEvent> events = collect_events(toks, body);
    std::set<std::string> shared, shared_roots;
    for (const AccessorEvent& e : events) {
      if (e.path.empty()) continue;
      shared.insert(e.path);
      shared_roots.insert(root_of(e.path));
    }

    // step-ref-capture: explicit mutable reference capture of a buffer the
    // body accesses through the accessor.
    for (const auto& [name, line] : body.ref_captures) {
      if (shared_roots.count(name)) {
        findings.push_back(
            {path, line, "step-ref-capture",
             "step lambda captures shared array '" + name +
                 "' by mutable reference; route accesses through the Mem "
                 "accessor instead"});
      }
    }

    // step-raw-index: direct subscript of a buffer that this body also
    // accesses through the accessor.
    for (std::size_t i = body.begin; i < body.end; ++i) {
      if (!toks[i].ident()) continue;
      if (i > 0 && toks[i - 1].is(".")) continue;  // inside a longer path
      std::size_t next = 0;
      const std::string p = parse_path(toks, i, &next);
      if (next < body.end && toks[next].is("[") && shared.count(p)) {
        findings.push_back(
            {path, toks[next].line, "step-raw-index",
             "raw subscript of shared array '" + p +
                 "' inside a step body; use " + body.accessor + ".rd/" +
                 body.accessor + ".wr so the access is tracked"});
      }
      i = next - 1;
    }

    // step-read-after-write: a read of a buffer textually after a
    // completed write to the same buffer within one step body.
    std::set<std::string> reported;
    for (const AccessorEvent& r : events) {
      if (r.is_write || r.path.empty()) continue;
      for (const AccessorEvent& w : events) {
        if (!w.is_write || w.path != r.path) continue;
        if (w.end < r.start) {
          const std::string key = r.path + ":" + std::to_string(r.line);
          if (reported.insert(key).second) {
            findings.push_back(
                {path, r.line, "step-read-after-write",
                 "read of '" + r.path +
                     "' after a same-step write (write on line " +
                     std::to_string(w.line) +
                     "); step reads and writes must target distinct "
                     "buffers (double-buffer discipline)"});
          }
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Header rules (line-based pass).
// ---------------------------------------------------------------------------

struct IncludeInfo {
  int line = 0;
  bool angled = false;
  std::string target;
};

struct DirectiveScan {
  bool has_pragma_once = false;
  int pragma_line = 0;
  std::vector<IncludeInfo> includes;
};

DirectiveScan scan_directives(const std::string& text) {
  DirectiveScan scan;
  std::istringstream in(text);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '#') continue;
    ++p;
    p = raw.find_first_not_of(" \t", p);
    if (p == std::string::npos) continue;
    if (raw.compare(p, 6, "pragma") == 0 &&
        raw.find("once", p) != std::string::npos) {
      if (!scan.has_pragma_once) {
        scan.has_pragma_once = true;
        scan.pragma_line = line;
      }
      continue;
    }
    if (raw.compare(p, 7, "include") != 0) continue;
    p = raw.find_first_not_of(" \t", p + 7);
    if (p == std::string::npos) continue;
    const char open = raw[p];
    if (open != '<' && open != '"') continue;
    const char close = open == '<' ? '>' : '"';
    const std::size_t e = raw.find(close, p + 1);
    if (e == std::string::npos) continue;
    scan.includes.push_back(
        {line, open == '<', raw.substr(p + 1, e - p - 1)});
  }
  return scan;
}

bool is_header(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

/// Check that `incs` forms an <angled> block then a "quoted" block, each
/// alphabetically sorted.
void check_include_blocks(const std::string& path,
                          const std::vector<IncludeInfo>& incs,
                          std::vector<Finding>& findings) {
  bool seen_quoted = false;
  const IncludeInfo* prev = nullptr;
  for (const IncludeInfo& inc : incs) {
    if (!inc.angled) seen_quoted = true;
    if (inc.angled && seen_quoted) {
      findings.push_back({path, inc.line, "include-order",
                          "system include <" + inc.target +
                              "> after a project include; list all "
                              "<system> headers first"});
      prev = &inc;
      continue;
    }
    if (prev && prev->angled == inc.angled && inc.target < prev->target) {
      findings.push_back({path, inc.line, "include-order",
                          "include \"" + inc.target +
                              "\" out of alphabetical order (after \"" +
                              prev->target + "\")"});
    }
    prev = &inc;
  }
}

void check_header_rules(const std::string& path, const std::string& text,
                        std::vector<Finding>& findings) {
  const DirectiveScan scan = scan_directives(text);
  if (is_header(path)) {
    if (!scan.has_pragma_once) {
      findings.push_back({path, 1, "header-pragma-once",
                          "header is missing #pragma once"});
    } else if (!scan.includes.empty() &&
               scan.includes.front().line < scan.pragma_line) {
      findings.push_back({path, scan.pragma_line, "header-pragma-once",
                          "#pragma once must precede every #include"});
    }
    check_include_blocks(path, scan.includes, findings);
    return;
  }
  // .cpp: an optional leading quoted "primary" include (the file's own
  // header), then the header ordering.
  std::vector<IncludeInfo> incs = scan.includes;
  if (!incs.empty() && !incs.front().angled)
    incs.erase(incs.begin());
  check_include_blocks(path, incs, findings);
}

// ---------------------------------------------------------------------------
// unchecked-index: LLMP_CHECK/LLMP_DCHECK must guard indexing helpers.
// ---------------------------------------------------------------------------

bool is_check_ident(const std::string& t) {
  return t == "LLMP_CHECK" || t == "LLMP_DCHECK" || t == "LLMP_CHECK_MSG";
}

/// Names of std::vector-typed parameters in the param-list range.
std::vector<std::string> vector_params(const std::vector<Token>& toks,
                                       std::size_t begin, std::size_t end) {
  std::vector<std::string> names;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!(toks[i].ident() && toks[i].text == "vector" &&
          toks[i + 1].is("<")))
      continue;
    // Balance the template argument list ('<' ... '>').
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < end; ++j) {
      if (toks[j].is("<")) ++depth;
      if (toks[j].is(">")) {
        --depth;
        if (depth == 0) break;
      }
    }
    // Skip ref/pointer qualifiers, take the parameter name.
    std::size_t k = j + 1;
    while (k < end && (toks[k].is("&") || toks[k].is("*"))) ++k;
    if (k < end && toks[k].ident()) names.push_back(toks[k].text);
    i = j;
  }
  return names;
}

void check_guard_rules(const std::string& path,
                       const std::vector<Token>& toks,
                       std::vector<Finding>& findings) {
  for (std::size_t b = 1; b < toks.size(); ++b) {
    if (!toks[b].is("{")) continue;
    // Accept ') {', ') const {', ') noexcept {', ') const noexcept {'.
    std::size_t r = b;
    while (r > 0 && (toks[r - 1].text == "const" ||
                     toks[r - 1].text == "noexcept"))
      --r;
    if (r == 0 || !toks[r - 1].is(")")) continue;
    // Walk back to the matching '('.
    int depth = 0;
    std::size_t open = r - 1;
    for (;; --open) {
      if (toks[open].is(")")) ++depth;
      if (toks[open].is("(")) {
        --depth;
        if (depth == 0) break;
      }
      if (open == 0) break;
    }
    if (open == 0 || depth != 0) continue;
    const Token& before = toks[open - 1];
    if (!before.ident() || is_control_keyword(before.text)) continue;
    const std::vector<std::string> params =
        vector_params(toks, open + 1, r - 1);
    if (params.empty()) continue;
    const std::size_t body_end = match_close(toks, b);
    bool has_check = false;
    const Token* first_subscript = nullptr;
    std::string subscripted;
    for (std::size_t i = b + 1; i < body_end; ++i) {
      if (!toks[i].ident()) continue;
      if (is_check_ident(toks[i].text)) has_check = true;
      if (!first_subscript && toks[i + 1].is("[") &&
          (i == 0 || !toks[i - 1].is(".")) &&
          std::find(params.begin(), params.end(), toks[i].text) !=
              params.end()) {
        first_subscript = &toks[i];
        subscripted = toks[i].text;
      }
    }
    if (first_subscript && !has_check) {
      findings.push_back(
          {path, first_subscript->line, "unchecked-index",
           "function '" + before.text + "' indexes std::vector parameter '" +
               subscripted +
               "' without an LLMP_CHECK/LLMP_DCHECK guard"});
    }
    b = body_end;
  }
}

// ---------------------------------------------------------------------------
// failpoint-name: LLMP_FAILPOINT sites must follow the naming convention.
// ---------------------------------------------------------------------------

struct FailpointSite {
  std::string name;
  int line = 0;
};

bool is_failpoint_macro(const std::string& t) {
  return t == "LLMP_FAILPOINT" || t == "LLMP_FAILPOINT_STATUS";
}

/// Every `LLMP_FAILPOINT[_STATUS]("name")` call site in the token stream.
/// (The macro definitions themselves live on preprocessor lines, which
/// the lexer strips.)
std::vector<FailpointSite> collect_failpoint_sites(
    const std::vector<Token>& toks) {
  std::vector<FailpointSite> sites;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].ident() || !is_failpoint_macro(toks[i].text)) continue;
    if (!toks[i + 1].is("(")) continue;
    if (toks[i + 2].kind != Tok::kString) continue;
    sites.push_back({toks[i + 2].text, toks[i + 2].line});
  }
  return sites;
}

/// `file.scope.event`: exactly three non-empty segments of [a-z0-9_].
bool valid_failpoint_name(const std::string& name) {
  int segments = 1;
  char prev = '.';
  for (char c : name) {
    if (c == '.') {
      if (prev == '.') return false;  // empty segment
      ++segments;
    } else if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                 c == '_')) {
      return false;
    }
    prev = c;
  }
  return segments == 3 && prev != '.';
}

void check_failpoint_rules(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& findings) {
  for (const FailpointSite& site : collect_failpoint_sites(toks)) {
    if (!valid_failpoint_name(site.name)) {
      findings.push_back(
          {path, site.line, "failpoint-name",
           "failpoint name '" + site.name +
               "' must be file.scope.event — exactly three lowercase "
               "[a-z0-9_] segments"});
    }
  }
}

// ---------------------------------------------------------------------------
// storage-access: successor/predecessor arrays are a storage policy.
// ---------------------------------------------------------------------------

/// The identifiers whose raw subscript bakes the flat layout into a call
/// site. Exact-name match only: `succ_of[v]` or `arc_next[v]` are fine.
bool is_storage_array_name(const std::string& t) {
  return t == "next" || t == "pred" || t == "succ" || t == "suc";
}

void check_storage_rules(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& findings) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident() || !is_storage_array_name(toks[i].text)) continue;
    if (!toks[i + 1].is("[")) continue;
    findings.push_back(
        {path, toks[i].line, "storage-access",
         "raw subscript of storage array '" + toks[i].text +
             "' outside src/list//src/engine/; go through the "
             "list::LinkedList accessors (next(v), predecessors()) or "
             "rename the local — storage layout is a policy"});
  }
}

// ---------------------------------------------------------------------------
// raw-intrinsic: prefetch/SIMD are policies owned by src/pram/.
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const char* prefix) {
  return s.compare(0, std::string::traits_type::length(prefix), prefix) == 0;
}

/// Identifiers that reach hardware intrinsics directly. `_mm_malloc` and
/// friends all share the `_mm` prefixes, which is intended: aligned
/// allocation for vector code is part of the same policy surface.
bool is_intrinsic_name(const std::string& t) {
  return t == "__builtin_prefetch" || starts_with(t, "_mm_") ||
         starts_with(t, "_mm256_") || starts_with(t, "_mm512_") ||
         starts_with(t, "__m128") || starts_with(t, "__m256") ||
         starts_with(t, "__m512");
}

/// Vendor intrinsic headers: immintrin.h, emmintrin.h, x86intrin.h, ...
/// plus arm_neon.h for completeness.
bool is_intrinsic_header(const std::string& target) {
  const std::string suffix = "intrin.h";
  return target == "arm_neon.h" ||
         (target.size() >= suffix.size() &&
          target.compare(target.size() - suffix.size(), suffix.size(),
                         suffix) == 0);
}

void check_intrinsic_rules(const std::string& path, const std::string& text,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& findings) {
  for (const IncludeInfo& inc : scan_directives(text).includes) {
    if (!is_intrinsic_header(inc.target)) continue;
    findings.push_back(
        {path, inc.line, "raw-intrinsic",
         "intrinsic header <" + inc.target +
             "> outside src/pram/; prefetch and SIMD are runtime-dispatched "
             "policies — use pram/prefetch.h / pram/simd.h"});
  }
  for (const Token& t : toks) {
    if (!t.ident() || !is_intrinsic_name(t.text)) continue;
    findings.push_back(
        {path, t.line, "raw-intrinsic",
         "raw intrinsic '" + t.text +
             "' outside src/pram/; call the pram::prefetch_ro / pram::simd "
             "wrappers so the scalar fallback and runtime dispatch stay in "
             "force"});
  }
}

// ---------------------------------------------------------------------------
// serve-raw-sync: serve code must go through the sync-policy vocabulary.
// ---------------------------------------------------------------------------

/// std:: names that bypass the Sync policy. lock_guard / unique_lock are
/// deliberately absent: they are templated over the policy's mutex type
/// and work unchanged under the mc:: shims.
bool is_raw_sync_name(const std::string& t) {
  return t == "atomic" || t == "atomic_flag" || t == "mutex" ||
         t == "recursive_mutex" || t == "timed_mutex" ||
         t == "shared_mutex" || t == "condition_variable" ||
         t == "condition_variable_any" || t == "thread" || t == "jthread" ||
         t == "this_thread";
}

void check_serve_sync_rules(const std::string& path,
                            const std::vector<Token>& toks,
                            std::vector<Finding>& findings) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(toks[i].ident() && toks[i].text == "std")) continue;
    if (!(toks[i + 1].is(":") && toks[i + 2].is(":"))) continue;
    const Token& name = toks[i + 3];
    if (!name.ident() || !is_raw_sync_name(name.text)) continue;
    findings.push_back(
        {path, name.line, "serve-raw-sync",
         "raw std::" + name.text +
             " in serve code; spell synchronisation through a Sync policy "
             "(serve/sync_policy.h) so the source stays model-checkable "
             "under the mc:: shims"});
    i += 3;
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool under_src(const std::string& path) {
  return path.find("src/") == 0 || path.find("/src/") != std::string::npos;
}

// src/serve/ is the one subsystem allowed to use real host threads: its
// queue and worker loop are ordinary mutex/atomic concurrency, not PRAM
// step bodies, so the step-discipline rules (written for exec.step
// lambdas and rd/wr accessors) do not apply there. Header hygiene and
// guard rules still do. src/core/ and src/pram/ algorithm code remains
// fully checked.
bool under_serve(const std::string& path) {
  return path.find("src/serve/") == 0 ||
         path.find("/src/serve/") != std::string::npos;
}

// src/list/ owns the flat layout and src/engine/ the blocked one; inside
// those two subsystems subscripting the storage arrays IS the job. All
// other src/ code must stay storage-agnostic.
bool owns_storage(const std::string& path) {
  return path.find("src/list/") == 0 ||
         path.find("/src/list/") != std::string::npos ||
         path.find("src/engine/") == 0 ||
         path.find("/src/engine/") != std::string::npos;
}

// src/pram/ is the single sanctioned home of raw prefetch/SIMD
// intrinsics: prefetch.h and simd.h wrap them behind runtime-dispatched
// policies with portable scalar fallbacks. Everywhere else a fast path
// must be spelled through those wrappers.
bool under_pram(const std::string& path) {
  return path.find("src/pram/") == 0 ||
         path.find("/src/pram/") != std::string::npos;
}

// serve/sync_policy.h is the single sanctioned home of the raw std::
// primitives: it wraps them into the policy vocabulary everything else
// in src/serve/ must use.
bool is_sync_policy_header(const std::string& path) {
  const std::string suffix = "sync_policy.h";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

void apply_suppressions(const LexOutput& lx, std::vector<Finding>& findings) {
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       auto it = lx.allow.find(f.line);
                       if (it == lx.allow.end()) return false;
                       return it->second.count("*") != 0 ||
                              it->second.count(f.rule) != 0;
                     }),
      findings.end());
}

}  // namespace

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> ids = {
      "step-raw-index",  "step-ref-capture", "step-read-after-write",
      "header-pragma-once", "include-order", "unchecked-index",
      "failpoint-name", "serve-raw-sync", "storage-access",
      "raw-intrinsic"};
  return ids;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& text,
                                 const Options& opt) {
  std::vector<Finding> findings;
  const LexOutput lx = lex(text);
  if (opt.check_steps && !under_serve(path))
    check_step_rules(path, lx.tokens, findings);
  if (opt.check_headers) check_header_rules(path, text, findings);
  if (opt.check_guards && under_src(path))
    check_guard_rules(path, lx.tokens, findings);
  if (opt.check_failpoints) check_failpoint_rules(path, lx.tokens, findings);
  if (opt.check_storage && under_src(path) && !owns_storage(path))
    check_storage_rules(path, lx.tokens, findings);
  if (opt.check_intrinsics && !under_pram(path))
    check_intrinsic_rules(path, text, lx.tokens, findings);
  if (opt.check_serve_sync && under_serve(path) &&
      !is_sync_policy_header(path))
    check_serve_sync_rules(path, lx.tokens, findings);
  apply_suppressions(lx, findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const Options& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {{path, 0, "io", "cannot read file"}};
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), opt);
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& opt) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cpp" || ext == ".cc")
          files.push_back(it->path().string());
      }
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    std::vector<Finding> fs_ = lint_file(f, opt);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  // failpoint-name uniqueness is a cross-file property: names key a
  // process-wide registry, so a second site with the same name would make
  // arm()/counts() ambiguous. Flag every site after the first (files are
  // sorted, so "first" is deterministic).
  if (opt.check_failpoints) {
    std::map<std::string, std::pair<std::string, int>> first_site;
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) continue;  // already reported as an io finding above
      std::ostringstream buf;
      buf << in.rdbuf();
      const LexOutput lx = lex(buf.str());
      std::vector<Finding> dups;
      for (const FailpointSite& site : collect_failpoint_sites(lx.tokens)) {
        auto [it, inserted] =
            first_site.try_emplace(site.name, file, site.line);
        if (inserted) continue;
        dups.push_back({file, site.line, "failpoint-name",
                        "failpoint name '" + site.name +
                            "' is already used at " + it->second.first + ":" +
                            std::to_string(it->second.second) +
                            "; names must be unique across the tree"});
      }
      apply_suppressions(lx, dups);
      findings.insert(findings.end(), dups.begin(), dups.end());
    }
    std::sort(findings.begin(), findings.end());
  }
  return findings;
}

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

}  // namespace llmp::lint
