// Minimal C++ lexer for llmp_lint. No libclang, no regex: a hand-rolled
// scanner producing just enough structure for the project's rule checks —
// identifiers, numbers, literals, and single-character punctuation, with
// comments and preprocessor directives stripped from the token stream.
// Preprocessor lines (including continuations) are skipped here because the
// header rules (#pragma once, include order) run on a separate line-based
// pass; comments are scanned for `// lint:allow(rule-a,rule-b)` suppression
// markers, which are returned per line.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace llmp::lint {

enum class Tok {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literal (opaque)
  kString,  // string or char literal (opaque, text excludes quotes)
  kPunct,   // single punctuation character
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;

  bool is(const char* t) const { return text == t; }
  bool ident() const { return kind == Tok::kIdent; }
};

struct LexOutput {
  /// Token stream with comments and preprocessor lines removed; always
  /// terminated by a kEnd token.
  std::vector<Token> tokens;
  /// line -> rule ids suppressed on that line via `lint:allow(...)`;
  /// the id "*" suppresses every rule on the line.
  std::map<int, std::set<std::string>> allow;
};

LexOutput lex(const std::string& text);

}  // namespace llmp::lint
