#include "lexer.h"

#include <cctype>

namespace llmp::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Scan a comment's text for `lint:allow(a,b)` markers.
void collect_allows(const std::string& comment, int line, LexOutput& out) {
  const std::string marker = "lint:allow(";
  std::size_t at = comment.find(marker);
  while (at != std::string::npos) {
    std::size_t p = at + marker.size();
    std::string id;
    for (; p < comment.size() && comment[p] != ')'; ++p) {
      const char c = comment[p];
      if (c == ',') {
        if (!id.empty()) out.allow[line].insert(id);
        id.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        id += c;
      }
    }
    if (!id.empty()) out.allow[line].insert(id);
    at = comment.find(marker, p);
  }
}

}  // namespace

LexOutput lex(const std::string& text) {
  LexOutput out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto push = [&](Tok kind, std::string t) {
    out.tokens.push_back(Token{kind, std::move(t), line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      collect_allows(text.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = text.substr(i, end - i);
      collect_allows(body, start_line, out);
      for (char ch : body)
        if (ch == '\n') ++line;
      i = end == n ? n : end + 2;
      continue;
    }
    // String / char literal (raw strings handled crudely: R"( ... )").
    if (c == '"' || c == '\'') {
      if (c == '"' && i >= 1 && text[i - 1] == 'R') {
        std::size_t paren = text.find('(', i);
        std::size_t close = paren == std::string::npos
                                ? std::string::npos
                                : text.find(")" + text.substr(i + 1,
                                                              paren - i - 1) +
                                                "\"",
                                            paren);
        if (close == std::string::npos) close = n;
        for (std::size_t k = i; k < close && k < n; ++k)
          if (text[k] == '\n') ++line;
        push(Tok::kString, "");
        i = std::min(n, close + 1);
        continue;
      }
      const char quote = c;
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; keep scanning
        body += text[j];
        ++j;
      }
      push(Tok::kString, body);
      i = j < n ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      push(Tok::kIdent, text.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E'))))
        ++j;
      push(Tok::kNumber, text.substr(i, j - i));
      i = j;
      continue;
    }
    push(Tok::kPunct, std::string(1, c));
    ++i;
  }
  out.tokens.push_back(Token{Tok::kEnd, "", line});
  return out;
}

}  // namespace llmp::lint
