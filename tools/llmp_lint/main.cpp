// llmp_lint CLI. Usage:
//
//   llmp_lint [--list-rules] [--no-steps] [--no-headers] [--no-guards]
//             [--no-failpoints] [--no-serve-sync] [--no-storage-access]
//             [--no-intrinsics] [path ...]
//
// Paths may be files or directories (recursed for .h/.cpp/.cc); with no
// paths the tool lints src/, bench/, and examples/ relative to the current
// directory. Exit status is the number of findings capped at 1 — wire it
// straight into CI.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  llmp::lint::Options opt;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& id : llmp::lint::all_rule_ids())
        std::printf("%s\n", id.c_str());
      return 0;
    } else if (arg == "--no-steps") {
      opt.check_steps = false;
    } else if (arg == "--no-headers") {
      opt.check_headers = false;
    } else if (arg == "--no-guards") {
      opt.check_guards = false;
    } else if (arg == "--no-failpoints") {
      opt.check_failpoints = false;
    } else if (arg == "--no-serve-sync") {
      opt.check_serve_sync = false;
    } else if (arg == "--no-storage-access") {
      opt.check_storage = false;
    } else if (arg == "--no-intrinsics") {
      opt.check_intrinsics = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: llmp_lint [--list-rules] [--no-steps] [--no-headers] "
          "[--no-guards] [--no-failpoints] [--no-serve-sync] "
          "[--no-storage-access] [--no-intrinsics] [path ...]\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "examples"};

  const std::vector<llmp::lint::Finding> findings =
      llmp::lint::lint_tree(roots, opt);
  for (const llmp::lint::Finding& f : findings)
    std::printf("%s\n", llmp::lint::format_finding(f).c_str());
  if (findings.empty()) {
    std::printf("llmp_lint: clean\n");
    return 0;
  }
  std::printf("llmp_lint: %zu finding(s)\n", findings.size());
  return 1;
}
