// llmp_mc — bounded model checker for the serve primitives.
//
// Exhaustively explores the interleavings of small concurrent scenarios
// over the production BoundedQueue / RetryLedger / WorkerSlot templates
// (instantiated with McSyncPolicy) under a preemption bound, and proves
// its own teeth by checking that each seeded queue mutation is caught.
//
//   llmp_mc                         # full CI gate: clean + mutation matrix
//   llmp_mc --list                  # scenario inventory
//   llmp_mc --scenario=queue-mpmc   # one scenario, real implementation
//   llmp_mc --scenario=queue-mpmc --mutation=double-pop
//   llmp_mc --scenario=queue-mpmc --mutation=double-pop --replay=t1,t3,w2
//   llmp_mc --preemptions=3 --seed=0x5eed   # widen / reorder the search
//
// Exit status: 0 iff every requested check behaved as required — real
// implementation clean AND (in the default full run) every mutation
// caught by at least one scenario that exercises its code path.
// docs/MODELCHECK.md covers the model and how to add scenarios.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mc/mc.h"
#include "mc/scenarios.h"
#include "support/check.h"

namespace {

using llmp::mc::Options;
using llmp::mc::Report;
using llmp::mc::Scenario;
using llmp::mc::Violation;
using llmp::mc::ViolationKind;
using llmp::serve::QueueMutation;

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: llmp_mc [--list] [--scenario=NAME] [--mutation=NAME]\n"
      "               [--replay=SCHEDULE] [--preemptions=N]\n"
      "               [--max-execs=N] [--seed=HEX]\n"
      "\n"
      "No arguments: run every scenario on the real implementation and\n"
      "verify each seeded mutation (lost-notify, double-pop,\n"
      "dropped-acquire) is caught. See docs/MODELCHECK.md.\n");
  return code;
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Options tuned(Options base, std::size_t preemptions, std::size_t max_execs,
              std::uint64_t seed) {
  if (preemptions != 0) base.preemption_bound = preemptions;
  if (max_execs != 0) base.max_executions = max_execs;
  if (seed != 0) base.order_seed = seed;
  return base;
}

/// Run one scenario/mutation pair; returns true when the outcome matches
/// what the pair requires (clean for kNone, caught-or-unreached for a
/// mutant).
bool run_one(const Scenario& sc, QueueMutation mutation, const Options& opts,
             bool verbose, bool* violated = nullptr) {
  const Report rep = llmp::mc::check(sc.body, opts);
  if (violated != nullptr) *violated = !rep.ok;
  const char* mname = llmp::mc::to_string(mutation);
  if (mutation == QueueMutation::kNone) {
    if (rep.ok && rep.exhausted) {
      std::printf("PASS  %-26s %-16s %zu execution(s), %zu pruned\n",
                  sc.name.c_str(), mname, rep.executions, rep.pruned);
      return true;
    }
    if (rep.ok) {
      std::printf("FAIL  %-26s %-16s space NOT exhausted after %zu\n",
                  sc.name.c_str(), mname, rep.executions);
      return false;
    }
    std::printf("FAIL  %-26s %-16s %s\n", sc.name.c_str(), mname,
                rep.to_string().c_str());
    return false;
  }

  // Mutant: a scenario that exercises the mutated path must report one of
  // its expected kinds; a scenario that cannot reach the bug must still
  // verify clean (the mutation is a no-op there).
  if (!rep.ok) {
    const bool expected =
        std::find(sc.expected_violation.begin(), sc.expected_violation.end(),
                  rep.violation.kind) != sc.expected_violation.end();
    std::printf("%s  %-26s %-16s caught as %s after %zu execution(s)\n",
                expected ? "PASS" : "FAIL", sc.name.c_str(), mname,
                llmp::mc::to_string(rep.violation.kind), rep.executions);
    if (verbose || !expected) {
      std::printf("      schedule: %s\n",
                  rep.violation.schedule.empty() ? "(empty)"
                                                 : rep.violation.schedule.c_str());
      std::printf("%s\n", rep.violation.trace.c_str());
    }
    return expected;
  }
  std::printf("ok    %-26s %-16s not reached here (clean, %zu execs)\n",
              sc.name.c_str(), mname, rep.executions);
  return true;
}

int replay_one(const Scenario& sc, const std::string& schedule) {
  const Violation v = llmp::mc::replay(sc.body, schedule);
  if (v.kind == ViolationKind::kNone) {
    std::printf("replay of '%s' ran clean\n  schedule: %s\n", sc.name.c_str(),
                schedule.c_str());
    return 0;
  }
  std::printf("replay of '%s' reproduced: %s\n  %s\n  trace:\n%s\n",
              sc.name.c_str(), llmp::mc::to_string(v.kind), v.message.c_str(),
              v.trace.c_str());
  // Reproducing a violation is the *successful* outcome of a replay.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string mutation_name = "none";
  std::string replay_schedule;
  bool have_replay = false;
  bool list = false;
  std::size_t preemptions = 0;
  std::size_t max_execs = 0;
  std::uint64_t seed = 0;
  bool explicit_scenario = false;
  bool explicit_mutation = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list") {
      list = true;
    } else if (flag_value(arg, "--scenario", &v)) {
      scenario_name = v;
      explicit_scenario = true;
    } else if (flag_value(arg, "--mutation", &v)) {
      mutation_name = v;
      explicit_mutation = true;
    } else if (flag_value(arg, "--replay", &v)) {
      replay_schedule = v;
      have_replay = true;
    } else if (flag_value(arg, "--preemptions", &v)) {
      preemptions = static_cast<std::size_t>(std::stoul(v));
    } else if (flag_value(arg, "--max-execs", &v)) {
      max_execs = static_cast<std::size_t>(std::stoul(v));
    } else if (flag_value(arg, "--seed", &v)) {
      seed = std::stoull(v, nullptr, 16);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(2);
    }
  }

  try {
    if (list) {
      for (const Scenario& sc :
           llmp::mc::scenarios(QueueMutation::kNone))
        std::printf("%-26s %s\n", sc.name.c_str(), sc.description.c_str());
      return 0;
    }

    const QueueMutation mutation = llmp::mc::parse_mutation(mutation_name);

    if (have_replay) {
      if (!explicit_scenario) {
        std::fprintf(stderr, "--replay requires --scenario\n");
        return usage(2);
      }
      return replay_one(llmp::mc::find_scenario(scenario_name, mutation),
                        replay_schedule);
    }

    bool all_ok = true;
    if (explicit_scenario) {
      const Scenario sc = llmp::mc::find_scenario(scenario_name, mutation);
      all_ok = run_one(sc, mutation, tuned(sc.opts, preemptions, max_execs,
                                           seed),
                       /*verbose=*/true);
    } else if (explicit_mutation) {
      for (const Scenario& sc : llmp::mc::scenarios(mutation))
        all_ok &= run_one(sc, mutation,
                          tuned(sc.opts, preemptions, max_execs, seed),
                          /*verbose=*/false);
    } else {
      // Full gate. 1) The real implementation verifies clean everywhere.
      for (const Scenario& sc :
           llmp::mc::scenarios(QueueMutation::kNone))
        all_ok &= run_one(sc, QueueMutation::kNone,
                          tuned(sc.opts, preemptions, max_execs, seed),
                          /*verbose=*/false);
      // 2) Every seeded mutation is caught by at least one scenario.
      for (const QueueMutation m :
           {QueueMutation::kLostNotify, QueueMutation::kDoublePop,
            QueueMutation::kDroppedAcquire}) {
        bool caught = false;
        for (const Scenario& sc : llmp::mc::scenarios(m)) {
          if (sc.expected_violation.empty()) continue;  // path unreachable
          bool violated = false;
          if (!run_one(sc, m, tuned(sc.opts, preemptions, max_execs, seed),
                       /*verbose=*/false, &violated))
            all_ok = false;
          else if (violated)
            caught = true;
        }
        if (!caught) {
          std::printf("FAIL  mutation %s was not caught by any scenario\n",
                      llmp::mc::to_string(m));
          all_ok = false;
        }
      }
    }
    std::printf("%s\n", all_ok ? "llmp_mc: all checks passed"
                               : "llmp_mc: FAILURES (see above)");
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "llmp_mc: %s\n", e.what());
    return 2;
  }
}
