// llmp_prove — run every registered algorithm under the trace-recording
// executor and print the PRAM-legality verdict table.
//
//   llmp_prove [--sizes 48,97,160] [--seed 7] [--algo substring]
//
// Each algorithm runs once per size on a pseudorandom list; the recorded
// traces are replayed for Machine-equivalent conflict detection and
// classified for the symbolic (for-all-n) proof tier. Exit status is
// nonzero if any algorithm is illegal under its DECLARED model, so the
// binary doubles as a CI gate. See docs/ANALYSIS.md.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/algorithms.h"
#include "analysis/prover.h"
#include "list/generators.h"
#include "pram/context.h"
#include "pram/symbolic_exec.h"

namespace {

std::vector<std::size_t> parse_sizes(const std::string& arg) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t next = arg.find(',', pos);
    if (next == std::string::npos) next = arg.size();
    sizes.push_back(
        static_cast<std::size_t>(std::stoull(arg.substr(pos, next - pos))));
    pos = next + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {48, 97, 160};
  std::uint64_t seed = 7;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "llmp_prove: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sizes") {
      sizes = parse_sizes(value());
    } else if (arg == "--seed") {
      seed = std::stoull(value());
    } else if (arg == "--algo") {
      filter = value();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: llmp_prove [--sizes n1,n2,...] [--seed s] "
          "[--algo substring]\n");
      return 0;
    } else {
      std::fprintf(stderr, "llmp_prove: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "llmp_prove: --sizes must name at least one n\n");
    return 2;
  }

  using namespace llmp;
  std::vector<analysis::AlgoReport> reports;
  bool all_declared_legal = true;
  for (const core::AlgorithmEntry* entry : analysis::algorithm_registry()) {
    if (!filter.empty() && entry->name.find(filter) == std::string::npos)
      continue;
    analysis::AlgoReport report;
    report.name = entry->name;
    report.declared = pram::to_string(entry->declared);
    for (std::size_t n : sizes) {
      const list::LinkedList list = list::generators::random_list(n, seed);
      pram::SymbolicExec exec(n);
      pram::Context ctx(exec);
      entry->runner->run(ctx, list);
      report.runs.push_back(
          analysis::analyze_run(exec.take_trace(), n));
    }
    report.verdicts = analysis::combine_runs(report.runs);
    const analysis::ModeVerdict& declared_verdict =
        entry->declared == pram::Mode::kEREW ? report.verdicts.erew
        : entry->declared == pram::Mode::kCREW
            ? report.verdicts.crew
            : report.verdicts.common;
    report.declared_legal = declared_verdict.legal;
    all_declared_legal &= report.declared_legal;
    reports.push_back(std::move(report));
  }

  std::fputs(analysis::format_table(reports).c_str(), stdout);
  return all_declared_legal ? 0 : 1;
}
