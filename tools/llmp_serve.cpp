// llmp_serve — load generator / demo driver for serve::Service.
//
// Spins up a Service, fires a stream of matching requests at it from the
// main thread, and prints the ServiceStats snapshot: throughput, latency
// percentiles, per-outcome counts, arena pool effectiveness and the
// steady-state allocation counter (this binary instruments global
// operator new, so that counter is live — it must read 0 after warmup).
//
//   llmp_serve --requests 2000 --n 10000 --workers 8 --queue 256
//   llmp_serve --alg match2 --verify --deadline-ms 50 --policy reject
//   llmp_serve --csv            # one machine-readable line instead
//
// Resilience knobs (docs/RESILIENCE.md): --failpoints arms fault
// injection for the run, --retries/--wedge-ms/--degrade turn on the
// self-healing machinery so injected faults are absorbed instead of
// surfacing to the client.
//   llmp_serve --failpoints 'serve.worker.run=throw:p=0.01' --retries 3
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "llmp.h"
#include "support/alloc_counter.h"
#include "support/failpoint.h"
#include "support/format.h"

// Instrument the global allocator so ServiceStats::steady_allocs counts
// (see support/alloc_counter.h; only in-AllocScope allocations tally).
void* operator new(std::size_t size) {
  llmp::support::note_alloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// Nothrow forms too: libstdc++ internals (std::get_temporary_buffer) pair
// new(nothrow) with plain delete, which must land on the same allocator.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  llmp::support::note_alloc();
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace llmp;

struct Args {
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count("--" + name); }
  std::string str(const std::string& name, const std::string& dflt) const {
    auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& name, std::uint64_t dflt) const {
    auto it = kv.find("--" + name);
    return it == kv.end() ? dflt
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

void usage() {
  std::cout
      << "usage: llmp_serve [options]\n"
         "  --requests R   total requests to submit (default 2000)\n"
         "  --n N          nodes per list (default 10000)\n"
         "  --lists L      distinct lists cycled through (default 8)\n"
         "  --workers W    service workers (default 4)\n"
         "  --queue Q      queue capacity (default 256)\n"
         "  --policy P     block|reject when the queue is full\n"
         "  --alg A        registry algorithm name (default match4)\n"
         "  --deadline-ms D  per-request deadline (default none)\n"
         "  --verify       audit every result with core::verify\n"
         "  --warmup K     warmup requests before stats reset (default "
         "8x workers + 8)\n"
         "  --failpoints S arm failpoints from spec S after warmup\n"
         "  --retries R    retry attempts per request (default 1 = none)\n"
         "  --wedge-ms T   watchdog replaces workers busy longer than T\n"
         "  --degrade      enable graceful degradation to sequential\n"
         "  --csv          one machine-readable summary line\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      usage();
      return 0;
    }
    if (token.rfind("--", 0) != 0) continue;
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
      a.kv[token] = argv[++i];
    else
      a.kv[token] = "1";
  }

  const std::uint64_t requests = a.num("requests", 2000);
  const std::size_t n = a.num("n", 10000);
  const std::size_t nlists = std::max<std::uint64_t>(a.num("lists", 8), 1);
  const std::string alg = a.str("alg", "match4");
  const std::uint64_t deadline_ms = a.num("deadline-ms", 0);

  serve::ServiceOptions sopt;
  sopt.workers = std::max<std::uint64_t>(a.num("workers", 4), 1);
  sopt.queue_capacity = std::max<std::uint64_t>(a.num("queue", 256), 1);
  sopt.overflow = a.str("policy", "block") == "reject"
                      ? serve::OverflowPolicy::kReject
                      : serve::OverflowPolicy::kBlock;
  sopt.verify = a.flag("verify");
  sopt.retry.max_attempts =
      static_cast<int>(std::max<std::uint64_t>(a.num("retries", 1), 1));
  sopt.wedge_threshold = std::chrono::milliseconds(a.num("wedge-ms", 0));
  if (sopt.wedge_threshold.count() > 0)
    sopt.supervisor_period =
        std::max(sopt.wedge_threshold / 4, std::chrono::milliseconds(1));
  sopt.degrade.enabled = a.flag("degrade");

  // A small pool of pre-generated lists, cycled — request generation must
  // not dominate the measurement.
  std::vector<list::LinkedList> lists;
  lists.reserve(nlists);
  for (std::size_t i = 0; i < nlists; ++i)
    lists.push_back(list::generators::random_list(n, /*seed=*/1000 + i));

  serve::Service svc(sopt);
  auto make_request = [&](std::uint64_t k) {
    serve::Request req;
    req.list = &lists[k % nlists];
    req.algorithm = alg;
    if (deadline_ms != 0)
      req.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms);
    return req;
  };

  // Warmup fills every worker's arena pool, then the steady-state window
  // starts from a clean slate (reset_stats rebases the alloc baseline).
  // Default generously: requests are not balanced across workers, so a
  // few times the worker count is needed before every arena is warm.
  const std::uint64_t warmup = a.num("warmup", 8 * sopt.workers + 8);
  {
    std::vector<std::future<Result<core::MatchResult>>> futs;
    for (std::uint64_t k = 0; k < warmup; ++k)
      futs.push_back(svc.submit(make_request(k)));
    for (auto& f : futs) f.get();
  }
  svc.reset_stats();

  // Arm failpoints only after warmup: the warm arena pool is part of the
  // steady state the fault run is supposed to stress.
  const std::string failpoints = a.str("failpoints", "");
  if (!failpoints.empty()) {
    const Status s = support::failpoint::arm_from_string(failpoints);
    if (!s.ok()) {
      std::cerr << "llmp_serve: bad --failpoints spec: " << s.message()
                << "\n";
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Result<core::MatchResult>>> futs;
  futs.reserve(requests);
  for (std::uint64_t k = 0; k < requests; ++k)
    futs.push_back(svc.submit(make_request(k)));
  std::uint64_t got_ok = 0;
  for (auto& f : futs) got_ok += f.get().ok() ? 1 : 0;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServiceStats st = svc.stats();
  svc.shutdown();
  const double rps = secs > 0 ? static_cast<double>(requests) / secs : 0;

  if (a.flag("csv")) {
    std::cout << "alg,n,workers,queue,requests,ok,rejected,expired,failed,"
                 "retries,restarts,quarantined,degraded,watchdog_fires,"
                 "seconds,rps,p50_us,p99_us,steady_allocs,arena_takes,"
                 "arena_hits\n"
              << alg << ',' << n << ',' << sopt.workers << ','
              << sopt.queue_capacity << ',' << requests << ',' << got_ok << ','
              << st.rejected << ',' << st.expired << ',' << st.failed << ','
              << st.retries << ',' << st.restarts << ',' << st.quarantined
              << ',' << st.degraded << ',' << st.watchdog_fires << ','
              << secs << ',' << rps << ',' << st.p50_latency_us << ','
              << st.p99_latency_us << ',' << st.steady_allocs << ','
              << st.arena_takes << ',' << st.arena_hits << "\n";
    return 0;
  }

  std::cout << "llmp_serve: " << requests << " x " << alg << " on n=" << n
            << " lists, " << sopt.workers << " workers, queue "
            << sopt.queue_capacity << " ("
            << (sopt.overflow == serve::OverflowPolicy::kReject ? "reject"
                                                                : "block")
            << ")\n\n";
  fmt::Table t({"metric", "value"});
  t.add_row({"throughput (req/s)", fmt::num(static_cast<std::uint64_t>(rps))});
  t.add_row({"wall seconds", std::to_string(secs)});
  t.add_row({"ok", fmt::num(got_ok)});
  t.add_row({"completed", fmt::num(st.completed)});
  t.add_row({"rejected", fmt::num(st.rejected)});
  t.add_row({"expired", fmt::num(st.expired)});
  t.add_row({"cancelled", fmt::num(st.cancelled)});
  t.add_row({"failed", fmt::num(st.failed)});
  t.add_row({"retries", fmt::num(st.retries)});
  t.add_row({"worker restarts", fmt::num(st.restarts)});
  t.add_row({"quarantined", fmt::num(st.quarantined)});
  t.add_row({"degraded runs", fmt::num(st.degraded)});
  t.add_row({"watchdog fires", fmt::num(st.watchdog_fires)});
  t.add_row({"p50 latency (us)", fmt::num(st.p50_latency_us)});
  t.add_row({"p99 latency (us)", fmt::num(st.p99_latency_us)});
  t.add_row({"steady-state allocs", fmt::num(st.steady_allocs)});
  t.add_row({"arena leases", fmt::num(st.arena_takes)});
  t.add_row({"arena pool hits", fmt::num(st.arena_hits)});
  t.print();
  if (st.steady_allocs != 0)
    std::cout << "\nWARNING: steady-state allocations nonzero — arena pool "
                 "not covering the algorithm path\n";
  return got_ok == requests ? 0 : 1;
}
