// llmp_serve — load generator, network server and network client for the
// serve layer, in one binary. Three modes, chosen by the --net.* flags
// (src/net/cli.h owns the flag grammar; every pre-namespace flag remains
// a valid alias):
//
//   (default)            classic in-process loop: spin up a Service, fire
//                        the request stream at it from this thread, print
//                        the ServiceStats snapshot. This binary
//                        instruments global operator new, so the
//                        steady-state allocation counter is live — it
//                        must read 0 after warmup.
//   --net.listen PORT    serve the wire protocol (docs/NET.md) on PORT
//                        until SIGINT/SIGTERM; per-tenant quotas from
//                        --net.quota-rps / --net.max-in-flight.
//   --net.connect H:P    same request stream, sent to a remote llmp_serve
//                        over --net.conns pipelined connections.
//
//   llmp_serve --serve.requests 2000 --serve.n 10000 --serve.workers 8
//   llmp_serve --serve.alg match2 --serve.verify --serve.policy reject
//   llmp_serve --net.listen 7070 --net.quota-rps 500 &
//   llmp_serve --net.connect 127.0.0.1:7070 --net.conns 4 --csv
//
// Resilience knobs (docs/RESILIENCE.md): --fault.failpoints arms fault
// injection for the run, --fault.retries / --fault.wedge-ms /
// --fault.degrade turn on the self-healing machinery so injected faults
// are absorbed instead of surfacing to the client.
//   llmp_serve --fault.failpoints 'serve.worker.run=throw:p=0.01'
//              --fault.retries 3  (one command line)
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "llmp.h"
#include "net/cli.h"
#include "net/client.h"
#include "net/server.h"
#include "support/alloc_counter.h"
#include "support/failpoint.h"
#include "support/format.h"

// Instrument the global allocator so ServiceStats::steady_allocs counts
// (see support/alloc_counter.h; only in-AllocScope allocations tally).
void* operator new(std::size_t size) {
  llmp::support::note_alloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// Nothrow forms too: libstdc++ internals (std::get_temporary_buffer) pair
// new(nothrow) with plain delete, which must land on the same allocator.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  llmp::support::note_alloc();
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace llmp;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

net::AdmissionOptions admission_from(const net::ServeCliOptions& opt) {
  net::AdmissionOptions adm;
  adm.default_quota.tokens_per_sec = opt.quota_rps;
  adm.default_quota.burst = opt.quota_burst;
  adm.default_quota.max_in_flight = opt.max_in_flight;
  return adm;
}

int arm_failpoints(const std::string& spec) {
  if (spec.empty()) return 0;
  const Status s = support::failpoint::arm_from_string(spec);
  if (!s.ok()) {
    std::cerr << "llmp_serve: bad --fault.failpoints spec: " << s.message()
              << "\n";
    return 2;
  }
  return 0;
}

/// --net.listen: Service + Server until a signal arrives.
int run_listen(const net::ServeCliOptions& opt) {
  serve::Service svc(opt.service);
  net::ServerOptions sopt;
  sopt.port = opt.listen_port;
  sopt.admission = admission_from(opt);
  net::Server server(svc, sopt);
  if (Status s = server.start(); !s.ok()) {
    std::cerr << "llmp_serve: " << s.to_string() << "\n";
    return 2;
  }
  if (int rc = arm_failpoints(opt.failpoints); rc != 0) return rc;
  std::cout << "llmp_serve: listening on " << server.port() << " ("
            << opt.service.workers << " workers, queue "
            << opt.service.queue_capacity << ")" << std::endl;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const net::ServerStats st = server.stats();
  server.stop();
  svc.shutdown();
  std::cout << "llmp_serve: shut down; connections " << st.accepted
            << ", frames in/out " << st.frames_in << "/" << st.frames_out
            << ", protocol errors " << st.protocol_errors << "\n";
  return 0;
}

/// --net.connect: the workload loop, over the wire.
int run_connect(const net::ServeCliOptions& opt) {
  const std::size_t conns = opt.conns;
  const std::uint64_t requests = opt.requests;
  std::vector<std::uint64_t> ok(conns, 0), errors(conns, 0);
  std::vector<net::ClientStats> cstats(conns);
  std::vector<int> failures(conns, 0);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      net::Client client({.host = opt.connect_host,
                          .port = opt.connect_port,
                          .tenant = opt.tenant});
      if (Status s = client.connect(); !s.ok()) {
        std::cerr << "llmp_serve: " << s.to_string() << "\n";
        failures[c] = 1;
        return;
      }
      const std::uint64_t mine =
          requests / conns + (c < requests % conns ? 1 : 0);
      constexpr std::uint64_t kBatch = 64;
      std::uint64_t sent = 0;
      while (sent < mine) {
        const std::uint64_t count = std::min(kBatch, mine - sent);
        std::vector<RequestBuilder> batch;
        batch.reserve(count);
        for (std::uint64_t k = 0; k < count; ++k) {
          RequestBuilder b;
          b.algorithm(opt.alg)
              .generated(opt.n, 1000 + (sent + k) % opt.lists)
              .tenant(opt.tenant);
          if (opt.deadline_ms != 0)
            b.deadline_after(std::chrono::milliseconds(opt.deadline_ms));
          batch.push_back(std::move(b));
        }
        for (const auto& r : client.submit_batch(batch))
          (r.ok() ? ok[c] : errors[c])++;
        sent += count;
        if (!client.connected()) {
          failures[c] = 1;
          break;
        }
      }
      cstats[c] = client.stats();
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t total_ok = 0, total_err = 0, p99 = 0, bytes = 0;
  bool failed = false;
  for (std::size_t c = 0; c < conns; ++c) {
    total_ok += ok[c];
    total_err += errors[c];
    p99 = std::max(p99, cstats[c].p99_latency_us);
    bytes += cstats[c].bytes_in + cstats[c].bytes_out;
    failed = failed || failures[c] != 0;
  }
  const double rps =
      secs > 0 ? static_cast<double>(total_ok + total_err) / secs : 0;
  if (opt.csv) {
    std::cout << "mode,conns,requests,ok,errors,seconds,rps,p99_us,bytes\n"
              << "connect," << conns << ',' << requests << ',' << total_ok
              << ',' << total_err << ',' << secs << ',' << rps << ',' << p99
              << ',' << bytes << "\n";
  } else {
    fmt::Table t({"metric", "value"});
    t.add_row({"connections", fmt::num(conns)});
    t.add_row({"ok", fmt::num(total_ok)});
    t.add_row({"errors", fmt::num(total_err)});
    t.add_row({"throughput (req/s)", fmt::num(static_cast<std::uint64_t>(rps))});
    t.add_row({"p99 latency (us)", fmt::num(p99)});
    t.add_row({"wire bytes", fmt::num(bytes)});
    t.print();
  }
  return !failed && total_ok == requests ? 0 : 1;
}

/// Default mode: the classic in-process loop.
int run_in_process(const net::ServeCliOptions& opt) {
  // A small pool of pre-generated lists, cycled — request generation must
  // not dominate the measurement.
  std::vector<list::LinkedList> lists;
  lists.reserve(opt.lists);
  for (std::size_t i = 0; i < opt.lists; ++i)
    lists.push_back(list::generators::random_list(opt.n, /*seed=*/1000 + i));

  serve::Service svc(opt.service);
  auto make_request = [&](std::uint64_t k) {
    RequestBuilder b;
    b.algorithm(opt.alg).list(lists[k % opt.lists]).tenant(opt.tenant);
    if (opt.deadline_ms != 0)
      b.deadline_after(std::chrono::milliseconds(opt.deadline_ms));
    return b.build();
  };

  // Warmup fills every worker's arena pool, then the steady-state window
  // starts from a clean slate (reset_stats rebases the alloc baseline).
  // Default generously: requests are not balanced across workers, so a
  // few times the worker count is needed before every arena is warm.
  const std::uint64_t warmup = opt.warmup != net::kAutoWarmup
                                   ? opt.warmup
                                   : 8 * opt.service.workers + 8;
  {
    std::vector<std::future<Result<core::MatchResult>>> futs;
    for (std::uint64_t k = 0; k < warmup; ++k)
      futs.push_back(svc.submit(make_request(k)));
    for (auto& f : futs) f.get();
  }
  svc.reset_stats();

  // Arm failpoints only after warmup: the warm arena pool is part of the
  // steady state the fault run is supposed to stress.
  if (int rc = arm_failpoints(opt.failpoints); rc != 0) return rc;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<Result<core::MatchResult>>> futs;
  futs.reserve(opt.requests);
  for (std::uint64_t k = 0; k < opt.requests; ++k)
    futs.push_back(svc.submit(make_request(k)));
  std::uint64_t got_ok = 0;
  for (auto& f : futs) got_ok += f.get().ok() ? 1 : 0;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServiceStats st = svc.stats();
  svc.shutdown();
  const double rps =
      secs > 0 ? static_cast<double>(opt.requests) / secs : 0;

  if (opt.csv) {
    std::cout << "alg,n,workers,queue,requests,ok,rejected,expired,failed,"
                 "retries,restarts,quarantined,degraded,watchdog_fires,"
                 "audits_failed,repairs,seconds,rps,p50_us,p99_us,"
                 "steady_allocs,arena_takes,arena_hits\n"
              << opt.alg << ',' << opt.n << ',' << opt.service.workers << ','
              << opt.service.queue_capacity << ',' << opt.requests << ','
              << got_ok << ',' << st.rejected << ',' << st.expired << ','
              << st.failed << ',' << st.retries << ',' << st.restarts << ','
              << st.quarantined << ',' << st.degraded << ','
              << st.watchdog_fires << ',' << st.audits_failed << ','
              << st.repairs << ',' << secs << ',' << rps << ','
              << st.p50_latency_us << ',' << st.p99_latency_us << ','
              << st.steady_allocs << ',' << st.arena_takes << ','
              << st.arena_hits << "\n";
    return 0;
  }

  std::cout << "llmp_serve: " << opt.requests << " x " << opt.alg
            << " on n=" << opt.n << " lists, " << opt.service.workers
            << " workers, queue " << opt.service.queue_capacity << " ("
            << (opt.service.overflow == serve::OverflowPolicy::kReject
                    ? "reject"
                    : "block")
            << ")\n\n";
  fmt::Table t({"metric", "value"});
  t.add_row({"throughput (req/s)", fmt::num(static_cast<std::uint64_t>(rps))});
  t.add_row({"wall seconds", std::to_string(secs)});
  t.add_row({"ok", fmt::num(got_ok)});
  t.add_row({"completed", fmt::num(st.completed)});
  t.add_row({"rejected", fmt::num(st.rejected)});
  t.add_row({"expired", fmt::num(st.expired)});
  t.add_row({"cancelled", fmt::num(st.cancelled)});
  t.add_row({"failed", fmt::num(st.failed)});
  t.add_row({"retries", fmt::num(st.retries)});
  t.add_row({"worker restarts", fmt::num(st.restarts)});
  t.add_row({"quarantined", fmt::num(st.quarantined)});
  t.add_row({"degraded runs", fmt::num(st.degraded)});
  t.add_row({"watchdog fires", fmt::num(st.watchdog_fires)});
  t.add_row({"audits failed", fmt::num(st.audits_failed)});
  t.add_row({"repairs", fmt::num(st.repairs)});
  t.add_row({"p50 latency (us)", fmt::num(st.p50_latency_us)});
  t.add_row({"p99 latency (us)", fmt::num(st.p99_latency_us)});
  t.add_row({"steady-state allocs", fmt::num(st.steady_allocs)});
  t.add_row({"arena leases", fmt::num(st.arena_takes)});
  t.add_row({"arena pool hits", fmt::num(st.arena_hits)});
  t.print();
  if (st.steady_allocs != 0)
    std::cout << "\nWARNING: steady-state allocations nonzero — arena pool "
                 "not covering the algorithm path\n";
  return got_ok == opt.requests ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServeCliOptions opt;
  bool help = false;
  if (Status s = net::parse_serve_cli(argc, argv, &opt, &help); !s.ok()) {
    std::cerr << "llmp_serve: " << s.message() << "\n\n"
              << net::serve_cli_usage();
    return 2;
  }
  if (help) {
    std::cout << net::serve_cli_usage();
    return 0;
  }
  if (opt.listen) return run_listen(opt);
  if (!opt.connect_host.empty()) return run_connect(opt);
  return run_in_process(opt);
}
