// bench_serve_throughput — scaling of serve::Service with worker count.
//
// Three sections, all on 10k-node random lists (override with --n):
//
//  1. CPU-bound scaling: workers 1/2/4/8 crunching match4 requests
//     back-to-back. Host-core-bound: on a machine with >= 8 cores the
//     8-worker row approaches 8x the 1-worker row; on this repo's usual
//     1-core container the rows stay flat (stated in the output) — the
//     section is still useful as an overhead check (the queue + futures
//     envelope must not erode single-worker throughput).
//
//  2. Latency-bound scaling: each request performs a simulated ~4 ms
//     downstream wait (via the on_dequeue hook) before the algorithm
//     runs — the shape of a service whose requests block on I/O. Worker
//     overlap hides the waits regardless of host cores, so 8 workers
//     must beat 1 worker by >= 4x even on one core. This is the
//     acceptance row.
//
//  3. Steady state: after warmup, the allocation counter across a full
//     measurement window must read exactly 0 (this binary instruments
//     global operator new; see support/alloc_counter.h).
//
//   ./bench_serve_throughput [--n 10000] [--csv] [--compare-baseline]
//
// --compare-baseline appends a fused-vs-legacy section: the same CPU-bound
// request mix served with the thread backend's fused sweeps switched off
// (the pre-raw-speed-pass dispatch) and on, and the req/s ratio between
// them. Results are bit-identical either way; only throughput moves.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <new>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "llmp.h"
#include "pram/tune.h"
#include "support/alloc_counter.h"

// Instrument the allocator so ServiceStats::steady_allocs is live.
void* operator new(std::size_t size) {
  llmp::support::note_alloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// Nothrow forms too: libstdc++ internals (std::get_temporary_buffer) pair
// new(nothrow) with plain delete, which must land on the same allocator.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  llmp::support::note_alloc();
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace llmp;

struct RunResult {
  double rps = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t arena_takes = 0;
  std::uint64_t arena_hits = 0;
};

/// Drive `requests` match4 requests through a fresh Service with
/// `workers` workers; stats are reset after `warmup` completed requests.
RunResult drive(const std::vector<list::LinkedList>& lists,
                std::size_t workers, std::uint64_t requests,
                std::chrono::microseconds simulated_wait) {
  serve::ServiceOptions opt;
  opt.workers = workers;
  opt.queue_capacity = 1024;
  if (simulated_wait.count() > 0)
    opt.on_dequeue = [simulated_wait](std::size_t) {
      std::this_thread::sleep_for(simulated_wait);
    };
  serve::Service svc(opt);

  auto submit_n = [&](std::uint64_t count) {
    std::vector<std::future<Result<core::MatchResult>>> futs;
    futs.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      serve::Request req;
      req.list = &lists[k % lists.size()];
      futs.push_back(svc.submit(std::move(req)));
    }
    for (auto& f : futs) {
      const auto r = f.get();
      LLMP_CHECK_MSG(r.ok(), r.status().to_string());
    }
  };

  submit_n(8 * workers + 8);  // warm every worker's arena
  svc.reset_stats();

  const auto t0 = std::chrono::steady_clock::now();
  submit_n(requests);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServiceStats st = svc.stats();
  RunResult out;
  out.rps = secs > 0 ? static_cast<double>(requests) / secs : 0;
  out.p50_us = st.p50_latency_us;
  out.p99_us = st.p99_latency_us;
  out.steady_allocs = st.steady_allocs;
  out.arena_takes = st.arena_takes;
  out.arena_hits = st.arena_hits;
  svc.shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare_baseline = false;
  int out_argc = 1;
  for (int in = 1; in < argc; ++in) {
    if (std::strcmp(argv[in], "--compare-baseline") == 0)
      compare_baseline = true;
    else
      argv[out_argc++] = argv[in];
  }
  argc = out_argc;
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t n = args.n_or(10000);
  const unsigned cores = std::thread::hardware_concurrency();

  std::vector<list::LinkedList> lists;
  for (std::size_t i = 0; i < 8; ++i)
    lists.push_back(list::generators::random_list(n, 7000 + i));

  std::cout << "bench_serve_throughput: match4 on n=" << n
            << " lists; host cores = " << cores << "\n\n";

  // ---- Section 1: CPU-bound scaling. ---------------------------------------
  std::cout << "[1] CPU-bound (no simulated wait) — scales with *host cores*"
            << (cores < 8 ? " (limited here: " + std::to_string(cores) +
                                " core(s); rows stay ~flat)"
                          : "")
            << "\n";
  fmt::Table cpu({"workers", "req/s", "vs 1 worker", "p50 us", "p99 us",
                  "steady allocs"});
  double cpu_base = 0;
  for (std::size_t w : {1, 2, 4, 8}) {
    const RunResult r =
        drive(lists, w, /*requests=*/160, std::chrono::microseconds(0));
    if (w == 1) cpu_base = r.rps;
    cpu.add_row({fmt::num(w), fmt::num(static_cast<std::uint64_t>(r.rps)),
                 fmt::num(cpu_base > 0 ? r.rps / cpu_base : 0, 2) + "x",
                 fmt::num(r.p50_us), fmt::num(r.p99_us),
                 fmt::num(r.steady_allocs)});
  }
  cpu.print();

  // ---- Section 2: latency-bound scaling (the acceptance row). --------------
  std::cout << "\n[2] Latency-bound (~4 ms simulated downstream wait per "
               "request) — worker overlap hides the waits on any host\n";
  fmt::Table lat({"workers", "req/s", "vs 1 worker", "p50 us", "p99 us",
                  "steady allocs"});
  double lat_base = 0, lat_best = 0;
  for (std::size_t w : {1, 2, 4, 8}) {
    const RunResult r =
        drive(lists, w, /*requests=*/96, std::chrono::milliseconds(4));
    if (w == 1) lat_base = r.rps;
    if (w == 8) lat_best = r.rps;
    lat.add_row({fmt::num(w), fmt::num(static_cast<std::uint64_t>(r.rps)),
                 fmt::num(lat_base > 0 ? r.rps / lat_base : 0, 2) + "x",
                 fmt::num(r.p50_us), fmt::num(r.p99_us),
                 fmt::num(r.steady_allocs)});
  }
  lat.print();
  const double speedup = lat_base > 0 ? lat_best / lat_base : 0;
  std::cout << "8-worker speedup (latency-bound): " << fmt::num(speedup, 2)
            << "x (target >= 4x)\n";

  // ---- Section 3: steady-state allocations. --------------------------------
  std::cout << "\n[3] Steady state after warmup (must be 0 allocations)\n";
  const RunResult ss =
      drive(lists, 4, /*requests=*/200, std::chrono::microseconds(0));
  fmt::Table t3({"requests", "arena takes", "arena hits", "steady allocs"});
  t3.add_row({fmt::num(200), fmt::num(ss.arena_takes), fmt::num(ss.arena_hits),
              fmt::num(ss.steady_allocs)});
  t3.print();

  // ---- Section 4 (opt-in): fused sweeps vs legacy dispatch. ----------------
  if (compare_baseline) {
    std::cout << "\n[4] --compare-baseline: fused sweeps vs legacy "
                 "per-element dispatch (CPU-bound, 4 workers)\n";
    const pram::SweepTuning saved = pram::tuning();
    pram::tuning().fused = false;
    const RunResult legacy =
        drive(lists, 4, /*requests=*/160, std::chrono::microseconds(0));
    pram::tuning() = saved;
    pram::tuning().fused = true;
    const RunResult fused =
        drive(lists, 4, /*requests=*/160, std::chrono::microseconds(0));
    pram::tuning() = saved;
    fmt::Table t4({"sweep mode", "req/s", "p50 us", "p99 us", "vs_legacy"});
    t4.add_row({"legacy", fmt::num(static_cast<std::uint64_t>(legacy.rps)),
                fmt::num(legacy.p50_us), fmt::num(legacy.p99_us), "1.00"});
    t4.add_row({"fused", fmt::num(static_cast<std::uint64_t>(fused.rps)),
                fmt::num(fused.p50_us), fmt::num(fused.p99_us),
                fmt::num(legacy.rps > 0 ? fused.rps / legacy.rps : 0, 2)});
    t4.print();
  }

  const bool pass = speedup >= 4.0 && ss.steady_allocs == 0;
  std::cout << "\n" << (pass ? "PASS" : "FAIL")
            << ": latency-bound 8-worker speedup >= 4x and zero steady-state "
               "allocations\n";
  return pass ? 0 : 1;
}
