// E3 (Lemma 2): f^(k) partitions the pointers into 2·log^(k−1) n·(1+o(1))
// matching sets. Sweep the iteration count k at several n; report the
// measured distinct-set count, the running bound, and the paper's closed
// form, until the fixed-point alphabet (6 labels) is reached — after
// ~G(n) rounds (also reported).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/gather.h"
#include "core/partition_fn.h"

namespace {

using namespace llmp;

void sweep_for_n(std::size_t n) {
  const auto lst = list::generators::random_list(n, n ^ 0x5a5a);
  pram::SeqExec exec(64);
  std::vector<label_t> labels, tmp(n);
  core::init_address_labels(exec, n, labels);

  std::cout << "\n[E3] n=" << bench::pow2(n) << "  G(n)=" << itlog::G(n)
            << "  rounds to fixed point="
            << core::rounds_to_constant(n) << "\n";
  fmt::Table t({"k (rounds)", "measured sets", "bound B_k",
                "2*log^(k) n (paper)"});
  label_t bound = n;
  for (int k = 1; bound > core::kFixedPointBound; ++k) {
    core::relabel(exec, lst, labels, tmp, core::BitRule::kMostSignificant);
    labels.swap(tmp);
    bound = core::partition_bound_after(bound);
    const double formula = 2 * itlog::ilog_real(k, static_cast<double>(n));
    t.add_row({fmt::num(k), fmt::num(core::distinct_labels(labels)),
               fmt::num(static_cast<std::uint64_t>(bound)),
               formula > 0 ? fmt::num(formula, 2) : std::string("<1")});
  }
  t.print();
}

void run_tables(const bench::BenchArgs& /*args*/) {
  std::cout << "E3 — Lemma 2: iterated matching partition set counts\n";
  for (int e : {12, 16, 20, 22}) sweep_for_n(std::size_t{1} << e);
  std::cout << "\nMeasured sets track 2*log^(k) n (the paper indexes the "
               "same quantity as\n2*log^(k-1) n for f^(k) = k-1 rounds) and "
               "collapse to <= 6 after ~G(n) rounds.\n";
}

void BM_ReduceToConstant(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 11);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    std::vector<label_t> labels;
    core::init_address_labels(exec, n, labels);
    core::reduce_to_constant(exec, lst, labels,
                             core::BitRule::kMostSignificant);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ReduceToConstant)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
