// Self-stabilizing repair (src/stabilize): moves-to-convergence versus
// corruption rate, in the Cohen et al. currency (a move = one match
// register write that changed a value). The claims under measurement:
//
//  * moves scale linearly with the damage and are bounded by ~3n even
//    when every register is garbage (the table pins moves/n),
//  * the iteration count is O(1) — sanitize/marry/augment converges in
//    <= 3 acting sweeps from any state, independent of n and rate,
//  * the repaired matching is auditor-clean and maximal every time.
//
// Every counter here is deterministic (SeqExec + seeded injector), so
// the whole table sits under scripts/bench_gate.py; only the
// google-benchmark wall-clock section is machine-dependent.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/sequential.h"
#include "core/verify.h"
#include "stabilize/audit.h"
#include "stabilize/inject.h"
#include "stabilize/repair.h"

namespace {

using namespace llmp;

struct Measured {
  stabilize::RepairStats stats;
  std::size_t damaged = 0;  ///< registers actually edited by the injector
  std::size_t edges = 0;    ///< matching size after repair
  bool clean = false;       ///< auditor-clean and maximal afterwards
};

/// Start from a correct maximal matching, scramble `count` registers,
/// repair, and audit the result.
Measured run_repair(const list::LinkedList& lst, std::size_t count,
                    std::uint64_t seed, std::size_t p) {
  pram::SeqExec exec(p);
  const std::vector<index_t>& links = lst.next_array();
  std::vector<index_t> m;
  stabilize::bits_to_registers(links,
                               core::sequential_matching(lst).in_matching, m);
  Measured out;
  out.damaged = stabilize::scramble_match_pointers(links, m, seed, count);
  out.stats = stabilize::repair_match_registers(exec, links, m);
  std::vector<std::uint8_t> marks;
  stabilize::registers_to_bits(exec, links, m, marks);
  out.clean = stabilize::audit_match_pointers(links, m).clean() &&
              stabilize::audit_matching(links, marks).clean();
  out.edges = core::verify::matching_size(marks);
  return out;
}

void run_tables(const bench::BenchArgs& args) {
  std::cout << "Self-stabilizing repair — moves to convergence "
               "(link-register model, Delta = 2)\n";
  const std::size_t n = args.n_or(std::size_t{1} << 20);
  const std::size_t p = args.p_or(1024);

  std::cout << "\n(a) corruption-rate sweep (random list, n = "
            << bench::pow2(n) << ")\n";
  {
    fmt::Table t({"corrupt rate", "damaged regs", "moves", "moves/n",
                  "iterations", "rounds", "edges", "clean+maximal"});
    const double rates[] = {0.001, 0.01, 0.05, 0.25, 1.0};
    const auto lst = list::generators::random_list(n, 42);
    for (const double rate : rates) {
      const auto count =
          static_cast<std::size_t>(static_cast<double>(n) * rate);
      const Measured r = run_repair(lst, count < 1 ? 1 : count, 7, p);
      t.add_row({fmt::num(rate, 3), fmt::num(r.damaged),
                 fmt::num(r.stats.moves),
                 fmt::num(static_cast<double>(r.stats.moves) /
                              static_cast<double>(n),
                          3),
                 fmt::num(r.stats.iterations), fmt::num(r.stats.rounds),
                 fmt::num(r.edges), r.clean ? "yes" : "NO"});
    }
    t.print();
  }

  std::cout << "\n(b) size sweep at full corruption (every register "
               "scrambled): moves/n must stay\n    below the 4n + 8 pin "
               "and iterations must stay O(1)\n";
  {
    fmt::Table t({"n", "moves", "moves/n", "iterations", "edges",
                  "clean+maximal"});
    for (std::size_t size = 1 << 10; size <= n; size <<= 2) {
      const auto lst = list::generators::random_list(size, 17);
      const Measured r = run_repair(lst, size, 9, p);
      t.add_row({fmt::num(size), fmt::num(r.stats.moves),
                 fmt::num(static_cast<double>(r.stats.moves) /
                              static_cast<double>(size),
                          3),
                 fmt::num(r.stats.iterations), fmt::num(r.edges),
                 r.clean ? "yes" : "NO"});
    }
    t.print();
  }
}

void BM_RepairFullScramble(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 6);
  for (auto _ : state) {
    const Measured r = run_repair(lst, n, 11, 1024);
    benchmark::DoNotOptimize(r.stats.moves);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RepairFullScramble)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
