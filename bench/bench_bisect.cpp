// E1 (Fig. 1 / Fig. 2): the bisecting-line observation.
//
// For each level k, the forward pointers whose distinguishing bit is k
// cross one of the 2^(w-1-k) bisecting lines at that level; the paper's
// observation is that the pointers crossing a given line in one direction
// have pairwise disjoint heads and tails. This bench counts pointers per
// f-value (line level × direction) on several list shapes and verifies the
// disjointness, reproducing the intuition behind Lemma 1: at most
// 2·ceil(log2 n) distinct f values.
#include <benchmark/benchmark.h>

#include <map>
#include <set>

#include "bench_common.h"
#include "core/partition_fn.h"
#include "support/check.h"

namespace {

using namespace llmp;

void crossing_histogram(const list::LinkedList& lst, const char* shape) {
  const std::size_t n = lst.size();
  std::map<label_t, std::size_t> histo;
  std::map<label_t, std::set<index_t>> endpoints;
  bool disjoint = true;
  for (index_t v = 0; v < n; ++v) {
    const index_t s = lst.next(v);
    if (s == knil) continue;
    const label_t f =
        core::partition_value(v, s, core::BitRule::kMostSignificant);
    ++histo[f];
    disjoint &= endpoints[f].insert(v).second;
    disjoint &= endpoints[f].insert(s).second;
  }
  LLMP_CHECK_MSG(disjoint, "Fig. 2 disjointness violated");

  // f = 2k + a_k: forward pointers (b > a) have b_k = 1, i.e. a_k = 0, so
  // even f values are forward and odd ones backward.
  fmt::Table t({"k (bit)", "fwd pointers (f=2k)", "bwd pointers (f=2k+1)"});
  for (int k = 0; k < 64; ++k) {
    const label_t fwd_key = 2 * static_cast<label_t>(k);
    const label_t bwd_key = fwd_key + 1;
    if (!histo.count(fwd_key) && !histo.count(bwd_key)) continue;
    t.add_row(
        {fmt::num(k), fmt::num(histo[fwd_key]), fmt::num(histo[bwd_key])});
  }
  std::cout << "\n[E1] shape=" << shape << " n=" << n
            << "  distinct f values=" << histo.size()
            << "  bound 2*ceil(log2 n)=" << 2 * itlog::ceil_log2(n)
            << "  (disjoint heads/tails per value: yes)\n";
  t.print();
}

void run_tables(const bench::BenchArgs& args) {
  std::cout << "E1 — bisecting-line crossing histograms (Fig. 1/Fig. 2)\n";
  const std::vector<std::size_t> sizes =
      args.n != 0 ? std::vector<std::size_t>{args.n}
                  : std::vector<std::size_t>{std::size_t{1} << 12,
                                             std::size_t{1} << 18};
  for (std::size_t n : sizes) {
    crossing_histogram(list::generators::random_list(n, 1), "random");
    crossing_histogram(list::generators::identity_list(n), "identity");
    crossing_histogram(list::generators::reverse_list(n), "reverse");
  }
}

void BM_PartitionValue(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  auto lst = list::generators::random_list(n, 3);
  const auto& next = lst.next_array();
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (index_t v = 0; v < n; ++v) {
      const index_t s = next[v];
      if (s == knil) continue;
      acc += core::partition_value(v, s, core::BitRule::kMostSignificant);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PartitionValue)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
