// E11 (Appendix): the preprocessing machinery.
//
//  (a) unary→binary conversion tables: direct layout (2^w cells, what the
//      appendix says cannot be replicated p times in O(G(n)) time) vs the
//      De Bruijn layout (O(w) cells); construction cost and lookup parity.
//  (b) bit-reversal permutation tables.
//  (c) evaluation of log n, log^(i) n, G(n), log G(n) by the appendix's
//      procedures, vs the native ones.
//  (d) matching-partition lookup tables: direct construction cost over
//      (component_bits, width), and the guess-and-verify audit depth
//      (O(log w), independent of n).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/appendix_eval.h"
#include "core/lookup_table.h"
#include "support/bits.h"

namespace {

using namespace llmp;

void run_tables(const bench::BenchArgs& /*args*/) {
  std::cout << "E11 — appendix preprocessing machinery\n";

  std::cout << "\n(a) unary->binary conversion tables\n";
  {
    fmt::Table t({"width w", "direct cells", "direct build ms",
                  "DeBruijn cells", "DeBruijn build ms", "lookups agree"});
    for (int w : {8, 16, 20, 24}) {
      double direct_ms = 0, db_ms = 0;
      std::size_t direct_cells = 0, db_cells = 0;
      bool agree = true;
      direct_ms = bench::wall_ms([&] {
        bits::UnaryToBinaryTable direct(
            w, bits::UnaryToBinaryTable::Layout::kDirect);
        direct_cells = direct.cells();
      });
      db_ms = bench::wall_ms([&] {
        bits::UnaryToBinaryTable db(
            w, bits::UnaryToBinaryTable::Layout::kDeBruijn);
        db_cells = db.cells();
      });
      bits::UnaryToBinaryTable direct(
          w, bits::UnaryToBinaryTable::Layout::kDirect);
      bits::UnaryToBinaryTable db(
          w, bits::UnaryToBinaryTable::Layout::kDeBruijn);
      for (int k = 0; k < w; ++k)
        agree &= direct.convert(1ULL << k) == db.convert(1ULL << k);
      t.add_row({fmt::num(w), fmt::num(direct_cells),
                 fmt::num(direct_ms, 3), fmt::num(db_cells),
                 fmt::num(db_ms, 3), agree ? "yes" : "NO"});
    }
    t.print();
  }

  std::cout << "\n(b) bit-reversal tables\n";
  {
    fmt::Table t({"width", "cells", "build ms"});
    for (int w : {8, 12, 16, 20}) {
      std::size_t cells = 0;
      const double ms = bench::wall_ms([&] {
        bits::BitReversalTable rev(w);
        cells = rev.cells();
      });
      t.add_row({fmt::num(w), fmt::num(cells), fmt::num(ms, 3)});
    }
    t.print();
  }

  std::cout << "\n(c) appendix evaluation procedures vs native\n";
  {
    fmt::Table t({"n", "log n (appendix)", "log n (native)",
                  "G(n) (appendix)", "G(n)", "log G(n)"});
    for (std::uint64_t n : {100ULL, 4095ULL, 1ULL << 14, (1ULL << 14) + 1}) {
      t.add_row({fmt::num(n),
                 fmt::num(itlog::floor_log2_appendix(n, 15)),
                 fmt::num(itlog::floor_log2(n)),
                 fmt::num(itlog::G_appendix(n)), fmt::num(itlog::G(n)),
                 fmt::num(itlog::log_G(n))});
    }
    t.print();
  }

  std::cout << "\n(c') parallel G(n)/log G(n) evaluation: the appendix's "
               "powers-of-two linked list\n     + pointer jumping, "
               "O(log G(n)) steps with n processors\n";
  {
    fmt::Table t({"n", "G (parallel)", "G (exact)", "logG (parallel)",
                  "logG (exact)", "jump steps (depth)"});
    for (std::uint64_t n : {16ULL, 1000ULL, 1ULL << 16, 1ULL << 22}) {
      pram::SeqExec exec(static_cast<std::size_t>(n));
      const auto r = core::eval_G_parallel(exec, n);
      t.add_row({fmt::num(n), fmt::num(r.G), fmt::num(itlog::G(n)),
                 fmt::num(r.log_G), fmt::num(itlog::log_G(n)),
                 fmt::num(r.cost.depth)});
    }
    t.print();
  }

  std::cout << "\n(d) matching-partition lookup tables (Match3/4 step 4)\n";
  {
    fmt::Table t({"component bits b", "tuple width", "cells 2^(b*w)",
                  "build ms", "final bound", "verify depth (steps)"});
    struct Cfg {
      int b, w;
    };
    for (Cfg cfg : {Cfg{3, 2}, Cfg{3, 4}, Cfg{4, 4}, Cfg{3, 8}, Cfg{4, 6}}) {
      double ms = 0;
      std::unique_ptr<core::MatchingLookupTable> table;
      ms = bench::wall_ms([&] {
        table = std::make_unique<core::MatchingLookupTable>(
            cfg.b, cfg.w, core::BitRule::kMostSignificant);
      });
      pram::SeqExec exec(1024);
      core::verify_pyramid(exec, *table, 0);
      t.add_row({fmt::num(cfg.b), fmt::num(cfg.w), fmt::num(table->cells()),
                 fmt::num(ms, 2),
                 fmt::num(static_cast<std::uint64_t>(table->final_bound())),
                 fmt::num(exec.stats().depth)});
    }
    t.print();
    std::cout << "\nThe verify column is the appendix's guess-and-verify "
                 "audit: one parallel check\nstep plus a ceil(log2 "
                 "w(w+1)/2)-deep AND tree — constant in n.\n";
  }
}

void BM_TableBuild_3x4(benchmark::State& state) {
  for (auto _ : state) {
    core::MatchingLookupTable table(3, 4, core::BitRule::kMostSignificant);
    benchmark::DoNotOptimize(table.cells());
  }
}
BENCHMARK(BM_TableBuild_3x4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
