// E5 (Lemma 4 / Match2): time O(n/p + log n), and the phase breakdown
// showing the global sort dominating as p grows — the inefficiency §3
// opens with ("we show that this global sorting scheme is inefficient")
// and that Match4 removes (see bench_ablation_sched for the head-to-head).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/match2.h"
#include "core/verify.h"

namespace {

using namespace llmp;

core::MatchResult run_match2(std::size_t n, std::size_t p) {
  const auto lst = list::generators::random_list(n, n * 3 + p);
  pram::SeqExec exec(p);
  auto r = core::match2(exec, lst);
  core::verify::check_maximal(lst, r.in_matching);
  return r;
}

void run_tables(const bench::BenchArgs& args) {
  const std::size_t p0 = args.p_or(256);
  std::cout << "E5 — Match2: time_p vs O(n/p + log n), phase breakdown\n";

  std::cout << "\n(a) n sweep at p = " << p0 << "\n";
  {
    fmt::Table t({"n", "sets R", "time_p", "formula fit c*(n/p + log n)"});
    double c = 0;
    for (int e = 12; e <= 22; e += 2) {
      const std::size_t n = std::size_t{1} << e;
      const auto r = run_match2(n, p0);
      const double f =
          static_cast<double>(n) / p0 + itlog::ceil_log2(n);
      if (c == 0) c = static_cast<double>(r.cost.time_p) / f;
      t.add_row({bench::pow2(n), fmt::num(r.partition_sets),
                 fmt::num(r.cost.time_p),
                 bench::vs_formula(r.cost.time_p, c * f)});
    }
    t.print();
  }

  const std::size_t nb = args.n_or(std::size_t{1} << 20);
  std::cout << "\n(b) phase breakdown, n = " << bench::pow2(nb)
            << ": the sort term stops scaling once p is large\n";
  {
    fmt::Table t({"p", "partition", "sort", "sweep", "total time_p",
                  "sort share"});
    const std::size_t n = nb;
    for (std::size_t p = 64; p <= (std::size_t{1} << 20); p <<= 4) {
      const auto r = run_match2(n, p);
      const auto part = pram::phase_cost(r.phases, "partition").time_p;
      const auto sort = pram::phase_cost(r.phases, "sort").time_p;
      const auto sweep = pram::phase_cost(r.phases, "sweep").time_p;
      t.add_row({fmt::num(p), fmt::num(part), fmt::num(sort),
                 fmt::num(sweep), fmt::num(r.cost.time_p),
                 fmt::num(100.0 * sort / r.cost.time_p, 1) + "%"});
    }
    t.print();
    std::cout << "\nOptimality ceiling: with T1 = n, p*T stays O(n) only "
                 "while p <= n/log n —\nbeyond that the sort's additive "
                 "log-terms dominate (the paper's motivation for §3).\n";
  }
}

void BM_Match2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 4);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    auto r = core::match2(exec, lst);
    benchmark::DoNotOptimize(r.edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Match2)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
