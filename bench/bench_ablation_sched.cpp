// E13 (§3/§4 discussion): ablation of the paper's scheduling technique.
//
// The design claim: given a partition into O(t) matching sets, the
// per-column sort + WalkDown schedule combines them into a maximal
// matching in O(t) time with n/t processors — whereas scheduling
// processors with a *global* sort (Match2's approach, grafted onto the
// same partition) pays the sort's additive log terms. Three arms:
//
//   A  Match4 as published  (column sort + WalkDown)
//   B  "Match4 minus WalkDown": same partition, then Match2's global
//      counting sort + set-by-set sweep
//   C  Match2 as published (its own coarser partition + global sort)
//
// Arms A and B share the identical step-1 partition, isolating the
// scheduler as the only variable.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/match2.h"
#include "core/match4.h"
#include "core/verify.h"
#include "pram/prefix.h"

namespace {

using namespace llmp;

/// Arm B: Match4's step-1 partition, combined by global sort + sweep.
template <class Exec>
core::MatchResult match4_with_global_sort(Exec& exec,
                                          const list::LinkedList& lst,
                                          int i) {
  core::MatchResult r;
  const std::size_t n = lst.size();
  const pram::Stats start = exec.stats();
  std::vector<label_t> labels;
  core::init_address_labels(exec, n, labels);
  if (n > 1)
    core::relabel_rounds(exec, lst, labels, i,
                         core::BitRule::kMostSignificant);
  const label_t bound =
      n > 1 ? core::bound_after_rounds(n, i) : 1;

  std::vector<index_t> keys(n);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(keys, v, static_cast<index_t>(m.rd(labels, v)));
  });
  auto sorted = pram::counting_sort_by_key(
      exec, keys, static_cast<index_t>(bound), exec.processors());

  const auto& next = lst.next_array();
  std::vector<std::uint8_t> done(n);
  r.in_matching.assign(n, 0);
  exec.step(n, [&](std::size_t v, auto&& m) {
    m.wr(done, v, std::uint8_t{0});
  });
  for (index_t k = 0; k < bound; ++k) {
    const auto lo = sorted.offsets[k], hi = sorted.offsets[k + 1];
    if (lo == hi) continue;
    exec.step(static_cast<std::size_t>(hi - lo),
              [&](std::size_t t, auto&& m) {
                const index_t v =
                    m.rd(sorted.order, static_cast<std::size_t>(lo) + t);
                const index_t s = m.rd(next, static_cast<std::size_t>(v));
                if (s == knil) return;
                if (m.rd(done, static_cast<std::size_t>(v)) ||
                    m.rd(done, static_cast<std::size_t>(s)))
                  return;
                m.wr(done, static_cast<std::size_t>(v), std::uint8_t{1});
                m.wr(done, static_cast<std::size_t>(s), std::uint8_t{1});
                m.wr(r.in_matching, static_cast<std::size_t>(v),
                     std::uint8_t{1});
              });
  }
  for (auto b : r.in_matching) r.edges += (b != 0);
  r.cost = exec.stats() - start;
  return r;
}

void run_tables(const bench::BenchArgs& args) {
  const std::size_t n = args.n_or(std::size_t{1} << 20);
  const int i = args.i_or(3);
  const auto lst = list::generators::random_list(n, 29);

  std::cout << "E13 — scheduler ablation at n = " << bench::pow2(n)
            << ", identical partition (i = " << i << ")\n\n";
  fmt::Table t({"p", "A: WalkDown (Match4)", "B: global sort",
                "C: Match2", "B/A", "A optimal (p*T/n)"});
  for (std::size_t p = 256; p <= (std::size_t{1} << 20); p <<= 2) {
    pram::SeqExec ea(p), eb(p), ec(p);
    core::Match4Options m4;
    m4.i_parameter = i;
    const auto a = core::match4(ea, lst, m4);
    const auto b = match4_with_global_sort(eb, lst, i);
    const auto c = core::match2(ec, lst);
    core::verify::check_maximal(lst, a.in_matching);
    core::verify::check_maximal(lst, b.in_matching);
    t.add_row({fmt::num(p), fmt::num(a.cost.time_p),
               fmt::num(b.cost.time_p), fmt::num(c.cost.time_p),
               fmt::num(static_cast<double>(b.cost.time_p) /
                            static_cast<double>(a.cost.time_p),
                        2),
               fmt::num(static_cast<double>(p) * a.cost.time_p / n, 2)});
  }
  t.print();
  std::cout << "\nWith few processors every arm is n/p-bound and differs "
               "only by constant factors\n(the WalkDown pipeline does more "
               "per-element bookkeeping, so A starts ~2x behind).\nAs p "
               "grows, arm B pays the global sort's additive scan depth "
               "over R*p counters\nwhile arm A's per-column sorts and "
               "WalkDown passes stay O(x): the B/A ratio\ncrosses 1 and "
               "keeps climbing — removing the global sort is exactly what "
               "extends\nthe optimality window, the paper's central "
               "claim.\n";
}

void BM_AblationArms(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const auto lst = list::generators::random_list(n, 12);
  const bool walkdown = state.range(0) == 0;
  for (auto _ : state) {
    pram::SeqExec exec(1024);
    if (walkdown) {
      auto r = core::match4(exec, lst);
      benchmark::DoNotOptimize(r.edges);
    } else {
      auto r = match4_with_global_sort(exec, lst, 3);
      benchmark::DoNotOptimize(r.edges);
    }
  }
}
BENCHMARK(BM_AblationArms)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
