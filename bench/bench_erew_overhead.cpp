// EREW vs CREW overhead (extension of E5/E11): the paper's Lemma 4 is an
// EREW bound and its appendix discusses what EREW execution costs. The
// EREW variants replace each neighbour read with an inbox fan-out step —
// this bench quantifies the constant-factor price across Match1/2/4, and
// measures the appendix's table-replication preprocessing against its
// O(copies·size/p + log copies) bound.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/match1.h"
#include "core/match2.h"
#include "core/match4.h"
#include "core/verify.h"
#include "pram/replicate.h"

namespace {

using namespace llmp;

void run_tables(const bench::BenchArgs& args) {
  std::cout << "EREW overhead — exclusive-read variants vs CREW\n";

  const std::size_t p = args.p_or(4096);
  std::cout << "\n(a) algorithm cost at n = " << bench::pow2(args.n_or(std::size_t{1} << 18))
            << ", p = " << p << " (both variants "
               "verified maximal;\n    EREW additionally machine-checked "
               "in tests/erew_test.cpp)\n";
  {
    const std::size_t n = args.n_or(std::size_t{1} << 18);
    const auto lst = list::generators::random_list(n, 31);
    fmt::Table t({"algorithm", "CREW depth", "EREW depth", "CREW time_p",
                  "EREW time_p", "time ratio"});
    auto row = [&](const char* name, auto run_crew, auto run_erew) {
      pram::SeqExec a(p), b(p);
      const auto rc = run_crew(a);
      const auto re = run_erew(b);
      core::verify::check_maximal(lst, rc.in_matching);
      core::verify::check_maximal(lst, re.in_matching);
      t.add_row({name, fmt::num(rc.cost.depth), fmt::num(re.cost.depth),
                 fmt::num(rc.cost.time_p), fmt::num(re.cost.time_p),
                 fmt::num(static_cast<double>(re.cost.time_p) /
                              static_cast<double>(rc.cost.time_p),
                          2)});
    };
    row("Match1",
        [&](auto& e) { return core::match1(e, lst); },
        [&](auto& e) {
          core::Match1Options o;
          o.erew = true;
          return core::match1(e, lst, o);
        });
    row("Match2",
        [&](auto& e) { return core::match2(e, lst); },
        [&](auto& e) {
          core::Match2Options o;
          o.erew = true;
          return core::match2(e, lst, o);
        });
    row("Match4",
        [&](auto& e) { return core::match4(e, lst); },
        [&](auto& e) {
          core::Match4Options o;
          o.erew = true;
          return core::match4(e, lst, o);
        });
    t.print();
    std::cout << "\nMatch2 pays the least (only step 1's relabel needs "
                 "fan-outs — its sort and sweep\nare exclusive already), "
                 "matching the appendix's remark that Match2 runs on EREW\n"
                 "\"without any precomputation\".\n";
  }

  std::cout << "\n(b) appendix table replication: p copies in O(c*s/p + "
               "log c) EREW time\n";
  {
    fmt::Table t({"table cells s", "copies c", "depth (1+log c)",
                  "time_p (p=4096)", "work (= c*s)"});
    for (std::size_t s : {std::size_t{64}, std::size_t{4096}}) {
      for (std::size_t c : {std::size_t{64}, std::size_t{4096}}) {
        std::vector<std::uint32_t> table(s, 7);
        pram::SeqExec exec(4096);
        auto flat = pram::replicate(exec, table, c);
        benchmark::DoNotOptimize(flat.data());
        t.add_row({fmt::num(s), fmt::num(c), fmt::num(exec.stats().depth),
                   fmt::num(exec.stats().time_p),
                   fmt::num(exec.stats().work)});
      }
    }
    t.print();
    std::cout << "\nReplicating per-processor conversion tables costs "
               "Θ(p·s) work — this is the\npreprocessing the appendix "
               "says cannot be hidden inside an O(G(n)) algorithm,\nand "
               "why Match2 (no tables) is the EREW workhorse.\n";
  }
}

void BM_Match4Erew(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const auto lst = list::generators::random_list(n, 13);
  const bool erew = state.range(0) != 0;
  for (auto _ : state) {
    pram::SeqExec exec(64);
    core::Match4Options o;
    o.erew = erew;
    auto r = core::match4(exec, lst, o);
    benchmark::DoNotOptimize(r.edges);
  }
}
BENCHMARK(BM_Match4Erew)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
