// E4 (Lemma 3 / Match1): time O(n·G(n)/p + G(n)).
//
// Sweep n at fixed p and p at fixed n; report the cost model's time_p next
// to the formula c·(n·G(n)/p + G(n)) with c fitted on the first row. The
// shape claims: time scales ~linearly in n, scales ~1/p until p ≈ n, and
// the relabel phase dominates with a G(n) multiplier — i.e. Match1 is a
// factor Θ(G(n)) off optimal, which is exactly why Match2/Match4 exist.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/match1.h"
#include "core/sequential.h"
#include "core/verify.h"

namespace {

using namespace llmp;

std::uint64_t run_match1(std::size_t n, std::size_t p) {
  const auto lst = list::generators::random_list(n, n + p);
  pram::SeqExec exec(p);
  const auto r = core::match1(exec, lst);
  core::verify::check_maximal(lst, r.in_matching);
  return r.cost.time_p;
}

double formula(std::size_t n, std::size_t p) {
  const double g = itlog::G(n);
  return static_cast<double>(n) * g / static_cast<double>(p) + g;
}

void run_tables(const bench::BenchArgs& args) {
  const std::size_t p0 = args.p_or(256);
  std::cout << "E4 — Match1: time_p vs O(n*G(n)/p + G(n))\n";

  std::cout << "\n(a) n sweep at p = " << p0 << "\n";
  {
    fmt::Table t({"n", "G(n)", "time_p", "formula fit"});
    double c = 0;
    for (int e = 12; e <= 22; e += 2) {
      const std::size_t n = std::size_t{1} << e;
      const std::uint64_t tp = run_match1(n, p0);
      if (c == 0) c = static_cast<double>(tp) / formula(n, p0);
      t.add_row({bench::pow2(n), fmt::num(itlog::G(n)), fmt::num(tp),
                 bench::vs_formula(tp, c * formula(n, p0))});
    }
    t.print();
  }

  const std::size_t nb = args.n_or(std::size_t{1} << 20);
  std::cout << "\n(b) p sweep at n = " << bench::pow2(nb)
            << " (speedup should be ~p until p ~ n)\n";
  {
    fmt::Table t({"p", "time_p", "speedup vs p=1", "efficiency p*T/T1"});
    const std::size_t n = nb;
    const std::uint64_t t1 = run_match1(n, 1);
    const double seq = static_cast<double>(
        core::sequential_matching(list::generators::random_list(n, 1))
            .cost.time_p);
    for (std::size_t p = 1; p <= (std::size_t{1} << 22); p <<= 4) {
      const std::uint64_t tp = run_match1(n, p);
      t.add_row({fmt::num(p), fmt::num(tp),
                 fmt::num(static_cast<double>(t1) / tp, 1),
                 fmt::num(static_cast<double>(p) * tp / seq, 1)});
    }
    t.print();
    std::cout << "\nEfficiency (p*T/T1) sits near G(n)+const for all p — "
                 "Match1 is never optimal,\nmatching Lemma 3's discussion.\n";
  }
}

void BM_Match1(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 3);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    auto r = core::match1(exec, lst);
    benchmark::DoNotOptimize(r.edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Match1)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
