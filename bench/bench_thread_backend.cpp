// Raw-speed experiment for the production thread backend: the fused
// chunk-contiguous sweeps + software prefetch + SIMD label crunching +
// adaptive parallel threshold (pram/sweep.h and friends) against the
// legacy per-element dispatch, on the hot parallel workloads — Match1–4
// and both list rankings.
//
// "Legacy" here is the same binary with the fast paths switched off
// (pram::tuning().fused = false) and the threshold pinned at the
// historical constant kDefaultParallelThreshold: that combination executes
// the identical per-element step bodies the backend ran before the fused
// sweeps existed, so the ratio is a faithful before/after. Both modes MUST
// produce bit-identical results and cost surfaces (asserted here with
// LLMP_CHECK and enforced independently by tests/fused_backend_test.cpp);
// only the wall clock may move.
//
//   --n N                list size (default 2^16; the speedup acceptance
//                        runs use --n 2097152, i.e. n >= 1M)
//   --workers W          pool worker threads (default: host cores - 1)
//   --compare-baseline   additionally print the per-phase fused-vs-legacy
//                        wall report for the matching algorithms
//   --csv / --json[=FILE]  as in every bench (see bench_common.h)
//
// Wall columns (" ms") and "vs_"-prefixed ratios are machine noise and
// ignored by scripts/bench_gate.py's exact-compare; the gate's --speedup
// mode reads vs_legacy to enforce the >= 1.5x acceptance at n >= 1M.
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/list_ranking.h"
#include "bench_common.h"
#include "core/maximal_matching.h"
#include "pram/context.h"
#include "pram/sweep.h"
#include "support/format.h"

namespace {

using namespace llmp;

struct AlgoRun {
  pram::Stats cost;
  pram::PhaseBreakdown phases;  // matching algorithms only
  std::uint64_t check = 0;      // edges / rank checksum — model quantity
  double ms = 0;                // best-of-reps wall clock
};

std::uint64_t rank_checksum(const std::vector<std::uint64_t>& rank) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t r : rank) h = (h ^ r) * 1099511628211ULL;
  return h;
}

struct Workload {
  const char* name;
  // Runs once through the context, returns cost/phases/checksum.
  AlgoRun (*run)(pram::Context<pram::ParallelExec>&,
                 const list::LinkedList&);
};

template <core::Algorithm A>
AlgoRun run_matching(pram::Context<pram::ParallelExec>& ctx,
                     const list::LinkedList& list) {
  core::MatchOptions opt;
  opt.algorithm = A;
  const core::MatchResult r = core::maximal_matching(ctx, list, opt);
  return {r.cost, r.phases, r.edges, 0};
}

AlgoRun run_wyllie(pram::Context<pram::ParallelExec>& ctx,
                   const list::LinkedList& list) {
  const apps::RankingResult r = apps::wyllie_ranking(ctx, list);
  return {r.cost, {}, rank_checksum(r.rank), 0};
}

AlgoRun run_contraction(pram::Context<pram::ParallelExec>& ctx,
                        const list::LinkedList& list) {
  const apps::RankingResult r = apps::contraction_ranking(ctx, list);
  return {r.cost, {}, rank_checksum(r.rank), 0};
}

constexpr Workload kWorkloads[] = {
    {"match1", &run_matching<core::Algorithm::kMatch1>},
    {"match2", &run_matching<core::Algorithm::kMatch2>},
    {"match3", &run_matching<core::Algorithm::kMatch3>},
    {"match4", &run_matching<core::Algorithm::kMatch4>},
    {"wyllie", &run_wyllie},
    {"contraction", &run_contraction},
};

/// Best-of-`reps` timed runs of one workload through a warm context.
AlgoRun timed(const Workload& w, pram::Context<pram::ParallelExec>& ctx,
              const list::LinkedList& list, int reps) {
  AlgoRun out = w.run(ctx, list);  // warmup (arena + tables + caches)
  out.ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    AlgoRun r;
    const double ms = bench::wall_ms([&] { r = w.run(ctx, list); });
    if (rep == 0 || ms < out.ms) {
      r.ms = ms;
      out = r;
    }
  }
  return out;
}

void check_same_model(const char* name, const AlgoRun& a, const AlgoRun& b) {
  LLMP_CHECK_MSG(a.check == b.check && a.cost.depth == b.cost.depth &&
                     a.cost.time_p == b.cost.time_p &&
                     a.cost.work == b.cost.work &&
                     a.phases.size() == b.phases.size(),
                 std::string("fused/legacy divergence in ") + name);
}

int run(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  // Local flags (stripped before anything else sees argv).
  std::size_t workers =
      std::thread::hardware_concurrency() > 1
          ? std::thread::hardware_concurrency() - 1
          : 0;
  bool compare_baseline = false;
  int out_argc = 1;
  for (int in = 1; in < argc; ++in) {
    if (std::strcmp(argv[in], "--compare-baseline") == 0) {
      compare_baseline = true;
    } else if (std::strcmp(argv[in], "--workers") == 0 && in + 1 < argc) {
      workers = static_cast<std::size_t>(
          std::strtoull(argv[++in], nullptr, 10));
    } else if (std::strncmp(argv[in], "--workers=", 10) == 0) {
      workers = static_cast<std::size_t>(
          std::strtoull(argv[in] + 10, nullptr, 10));
    } else {
      argv[out_argc++] = argv[in];
    }
  }
  argc = out_argc;

  const std::size_t n = args.n_or(std::size_t{1} << 16);
  const std::size_t p = args.p_or(64);
  const int reps = n >= (std::size_t{1} << 20) ? 3 : 5;
  const auto list = list::generators::random_list(n, 42);

  pram::ThreadPool pool(workers);
  pram::ParallelExec calibrated(p, pool);

  std::cout << "bench_thread_backend: fused sweeps vs legacy dispatch, n="
            << n << ", workers=" << workers << "\n\n";
  {
    fmt::Table t({"backend config", "workers", "calibrated_threshold",
                  "threshold_measured", "simd_level", "prefetch_distance"});
    const std::size_t thr = calibrated.parallel_threshold();
    t.add_row({"thread", fmt::num(workers),
               thr == pram::kNeverParallel ? "never" : fmt::num(thr),
               fmt::num(calibrated.calibration().measured ? 1 : 0),
               pram::simd::level_name(pram::simd::active_level()),
               fmt::num(static_cast<std::uint64_t>(
                   pram::tuning().prefetch.distance))});
    t.print();
  }

  // Per-workload fused/legacy runs. The tuning toggle is process-wide, so
  // flip it only between whole runs (never concurrently with one).
  struct Row {
    AlgoRun legacy, fused;
  };
  std::vector<Row> rows;
  const pram::SweepTuning saved = pram::tuning();
  for (const Workload& w : kWorkloads) {
    Row row;
    {
      pram::tuning().fused = false;
      pram::ParallelExec exec(
          p, pool, pram::ParallelExec::kDefaultParallelThreshold);
      pram::Context ctx(exec);
      row.legacy = timed(w, ctx, list, reps);
    }
    {
      pram::tuning() = saved;
      pram::tuning().fused = true;
      pram::ParallelExec exec(p, pool);
      pram::Context ctx(exec);
      row.fused = timed(w, ctx, list, reps);
    }
    pram::tuning() = saved;
    check_same_model(w.name, row.legacy, row.fused);
    rows.push_back(std::move(row));
  }

  std::cout << "\nwall clock (best of " << reps
            << "; model counters identical across modes by construction)\n";
  fmt::Table t({"algo", "n", "depth", "time_p", "work", "check",
                "legacy ms", "fused ms", "vs_legacy"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double ratio = r.fused.ms > 0 ? r.legacy.ms / r.fused.ms : 0;
    t.add_row({kWorkloads[i].name, fmt::num(n), fmt::num(r.fused.cost.depth),
               fmt::num(r.fused.cost.time_p), fmt::num(r.fused.cost.work),
               fmt::num(r.fused.check), fmt::num(r.legacy.ms, 3),
               fmt::num(r.fused.ms, 3), fmt::num(ratio, 3)});
  }
  t.print();

  if (compare_baseline) {
    std::cout << "\n--compare-baseline: per-phase fused-vs-legacy wall "
                 "ratios (matching algorithms)\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (r.fused.phases.empty()) continue;
      std::cout << "\n" << kWorkloads[i].name << ":\n";
      fmt::Table pt({std::string(kWorkloads[i].name) + " phase", "depth",
                     "time_p", "work", "legacy ms", "fused ms",
                     "vs_legacy"});
      for (std::size_t ph = 0; ph < r.fused.phases.size(); ++ph) {
        const pram::Phase& lp = r.legacy.phases[ph];
        const pram::Phase& fp = r.fused.phases[ph];
        const double ratio =
            fp.wall_ms > 0 ? lp.wall_ms / fp.wall_ms : 0;
        pt.add_row({fp.name, fmt::num(fp.cost.depth),
                    fmt::num(fp.cost.time_p), fmt::num(fp.cost.work),
                    fmt::num(lp.wall_ms, 3), fmt::num(fp.wall_ms, 3),
                    fmt::num(ratio, 3)});
      }
      pt.print();
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
