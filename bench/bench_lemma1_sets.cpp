// E2 (Lemma 1): one application of f partitions the n pointers of a linked
// list into at most 2·ceil(log2 n) matching sets. Sweep n and list shapes,
// report measured distinct-set counts next to the bound, for both bit
// rules.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/partition_fn.h"

namespace {

using namespace llmp;

std::size_t sets_after_one_round(const list::LinkedList& lst,
                                 core::BitRule rule) {
  pram::SeqExec exec(64);
  std::vector<label_t> labels, out(lst.size());
  core::init_address_labels(exec, lst.size(), labels);
  core::relabel(exec, lst, labels, out, rule);
  return core::distinct_labels(out);
}

void run_tables(const bench::BenchArgs& /*args*/) {
  std::cout << "E2 — Lemma 1: distinct matching sets after one f\n\n";
  fmt::Table t({"n", "bound 2*log n", "random MSB", "random LSB",
                "identity MSB", "reverse MSB", "strided MSB"});
  for (int e = 8; e <= 22; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const auto rnd = list::generators::random_list(n, 7 * e);
    const auto idn = list::generators::identity_list(n);
    const auto rev = list::generators::reverse_list(n);
    const auto str = list::generators::strided_list(n, 1048573);  // odd: ok
    t.add_row({bench::pow2(n), fmt::num(2 * itlog::ceil_log2(n)),
               fmt::num(sets_after_one_round(rnd,
                                             core::BitRule::kMostSignificant)),
               fmt::num(sets_after_one_round(
                   rnd, core::BitRule::kLeastSignificant)),
               fmt::num(sets_after_one_round(idn,
                                             core::BitRule::kMostSignificant)),
               fmt::num(sets_after_one_round(rev,
                                             core::BitRule::kMostSignificant)),
               fmt::num(sets_after_one_round(
                   str, core::BitRule::kMostSignificant))});
  }
  t.print();
  std::cout << "\nEvery column must stay <= the bound; identity lists use "
               "the fewest sets\n(only forward pointers of span 1), random "
               "lists nearly saturate it.\n";
}

void BM_OneRelabelRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 5);
  pram::SeqExec exec(64);
  std::vector<label_t> labels, out(n);
  core::init_address_labels(exec, n, labels);
  for (auto _ : state) {
    core::relabel(exec, lst, labels, out,
                  core::BitRule::kMostSignificant);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_OneRelabelRound)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
