// Shared helpers for the experiment harness. Every bench binary prints
// aligned tables of *measured* quantities (PRAM steps/time_p/work from the
// cost model; set counts; schedule lengths) next to the paper's *formula*
// with a fitted constant, so the shape claim — who wins, by what factor,
// where the knees fall — is directly checkable. See EXPERIMENTS.md.
//
// Wall-clock columns, where present, come from google-benchmark sections;
// on this 1-core host they track the cost model's `work`, not `time_p`
// (PRAM speedup is a model quantity here — stated in every header).
#pragma once

#include <chrono>
#include <cmath>
#include <string>

#include "list/generators.h"
#include "pram/executor.h"
#include "support/format.h"
#include "support/itlog.h"

namespace llmp::bench {

/// Measured/formula ratio rendered with the measurement, e.g. "4128 (1.01·f)".
inline std::string vs_formula(std::uint64_t measured, double formula) {
  if (formula <= 0) return fmt::num(measured);
  return fmt::num(measured) + " (" + fmt::num(measured / formula, 2) + "x)";
}

/// Wall-clock of one callable, in milliseconds.
template <class F>
double wall_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline std::string pow2(std::size_t n) {
  return "2^" + std::to_string(itlog::floor_log2(n));
}

}  // namespace llmp::bench
