// Shared helpers for the experiment harness. Every bench binary prints
// aligned tables of *measured* quantities (PRAM steps/time_p/work from the
// cost model; set counts; schedule lengths) next to the paper's *formula*
// with a fitted constant, so the shape claim — who wins, by what factor,
// where the knees fall — is directly checkable. See EXPERIMENTS.md.
//
// Wall-clock columns, where present, come from google-benchmark sections;
// on this 1-core host they track the cost model's `work`, not `time_p`
// (PRAM speedup is a model quantity here — stated in every header).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "list/generators.h"
#include "pram/executor.h"
#include "support/format.h"
#include "support/itlog.h"

namespace llmp::bench {

/// Harness-wide command-line overrides, shared by all bench binaries:
///
///   --n N          principal problem size (0 = keep the binary's default)
///   --p P          principal processor count
///   --i I          Match4's i parameter / iteration count
///   --csv          render every fmt::Table as CSV for scripting sweeps
///   --json[=FILE]  additionally mirror every printed table, at process
///                  exit, as google-benchmark-compatible JSON (to FILE,
///                  or stdout when no FILE is given); composes with --csv
///
/// parse_bench_args() STRIPS these from argv before the remaining flags
/// reach benchmark::Initialize (which exits on flags it doesn't know).
struct BenchArgs {
  std::size_t n = 0;
  std::size_t p = 0;
  int i = 0;
  bool csv = false;
  bool json = false;
  std::string json_path;  // empty = stdout

  std::size_t n_or(std::size_t dflt) const { return n != 0 ? n : dflt; }
  std::size_t p_or(std::size_t dflt) const { return p != 0 ? p : dflt; }
  int i_or(int dflt) const { return i != 0 ? i : dflt; }
};

namespace detail {

/// State for the atexit JSON flush (std::atexit takes a plain function
/// pointer, so the path/executable live in function-local statics).
inline std::string& json_exit_path() {
  static std::string path;
  return path;
}
inline std::string& json_exit_executable() {
  static std::string exe = "bench";
  return exe;
}

inline void flush_json_capture() {
  const std::string out = fmt::render_captured_json(json_exit_executable());
  if (json_exit_path().empty()) {
    std::fputs(out.c_str(), stdout);
    return;
  }
  std::ofstream f(json_exit_path(), std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "bench: cannot write --json file '%s'\n",
                 json_exit_path().c_str());
    return;
  }
  f << out;
}

}  // namespace detail

/// Parse and remove the harness flags from (argc, argv). Accepts both
/// "--n 65536" and "--n=65536". Switches fmt tables to CSV under --csv.
inline BenchArgs parse_bench_args(int& argc, char** argv) {
  BenchArgs args;
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    const char* arg = argv[in];
    auto value = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) != 0) return nullptr;
      if (arg[len] == '=') return arg + len + 1;
      if (arg[len] == '\0' && in + 1 < argc) return argv[++in];
      return nullptr;
    };
    if (std::strcmp(arg, "--csv") == 0) {
      args.csv = true;
    } else if (std::strncmp(arg, "--json", 6) == 0 &&
               (arg[6] == '\0' || arg[6] == '=')) {
      // "--json" alone streams to stdout; "--json=FILE" writes FILE. The
      // one-token forms only, so "--json foo" can't swallow a positional.
      args.json = true;
      if (arg[6] == '=') args.json_path = arg + 7;
    } else if (const char* v = value("--n")) {
      args.n = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--p")) {
      args.p = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--i")) {
      args.i = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      argv[out++] = argv[in];
      continue;
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (args.csv) fmt::set_table_style(fmt::TableStyle::kCsv);
  if (args.json) {
    fmt::enable_json_capture(true);
    detail::json_exit_path() = args.json_path;
    if (argv[0] != nullptr) detail::json_exit_executable() = argv[0];
    std::atexit(&detail::flush_json_capture);
  }
  return args;
}

/// Measured/formula ratio rendered with the measurement, e.g. "4128 (1.01·f)".
inline std::string vs_formula(std::uint64_t measured, double formula) {
  if (formula <= 0) return fmt::num(measured);
  return fmt::num(measured) + " (" + fmt::num(measured / formula, 2) + "x)";
}

/// Wall-clock of one callable, in milliseconds.
template <class F>
double wall_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline std::string pow2(std::size_t n) {
  return "2^" + std::to_string(itlog::floor_log2(n));
}

}  // namespace llmp::bench
