// E10 (Theorem 2): the full curve O(n·log i/p + log^(i) n + log i) for
// constructible i, and the crossovers between all four algorithms.
//
//  (a) Match4's time as a function of i at several p: for small p the
//      n·log i/p term favors small i; at huge p the additive log^(i) n
//      favors larger i — the adjustable-parameter trade-off the title's
//      "optimization" refers to.
//  (b) head-to-head time_p of Match1/2/3/4 over p: who wins where.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/maximal_matching.h"
#include "core/verify.h"

namespace {

using namespace llmp;

std::uint64_t time_of(core::Algorithm alg, const list::LinkedList& lst,
                      std::size_t p, int i, bool table_partition) {
  pram::SeqExec exec(p);
  core::MatchOptions opt;
  opt.algorithm = alg;
  opt.i_parameter = i;
  opt.partition_with_table = table_partition;
  const auto r = core::maximal_matching(exec, lst, opt);
  core::verify::check_maximal(lst, r.in_matching);
  return r.cost.time_p;
}

void run_tables(const bench::BenchArgs& args) {
  const std::size_t n = args.n_or(std::size_t{1} << 20);
  const auto lst = list::generators::random_list(n, 23);

  std::cout << "E10 — Theorem 2: time_p curve over (p, i), n = "
            << bench::pow2(n) << "\n";

  std::cout << "\n(a) Match4 time_p over i (iterative partition vs Lemma-5 "
               "table partition)\n";
  for (std::size_t p : {std::size_t{256}, std::size_t{1} << 14,
                        std::size_t{1} << 18}) {
    std::cout << "  p = " << p << "\n";
    fmt::Table t({"i", "x = rows", "time_p (iterative)", "time_p (table)",
                  "curve c*(n*log i/p + x + log i)"});
    double c = 0;
    for (int i = 1; i <= 6; ++i) {
      const label_t x = core::bound_after_rounds(n, i);
      const std::uint64_t ti =
          time_of(core::Algorithm::kMatch4, lst, p, i, false);
      const std::uint64_t tt =
          time_of(core::Algorithm::kMatch4, lst, p, i, true);
      const double logi = std::max(1.0, std::log2(static_cast<double>(i)));
      const double curve = static_cast<double>(n) * logi / p +
                           static_cast<double>(x) + logi;
      if (c == 0) c = static_cast<double>(tt) / curve;
      t.add_row({fmt::num(i), fmt::num(static_cast<std::uint64_t>(x)),
                 fmt::num(ti), fmt::num(tt),
                 bench::vs_formula(tt, c * curve)});
    }
    t.print();
  }

  std::cout << "\n(b) crossover table: time_p of every algorithm over p\n";
  {
    fmt::Table t({"p", "Match1", "Match2", "Match3", "Match4(i=3)",
                  "winner"});
    for (std::size_t p = 16; p <= (std::size_t{1} << 20); p <<= 3) {
      const std::uint64_t m1 =
          time_of(core::Algorithm::kMatch1, lst, p, 3, false);
      const std::uint64_t m2 =
          time_of(core::Algorithm::kMatch2, lst, p, 3, false);
      const std::uint64_t m3 =
          time_of(core::Algorithm::kMatch3, lst, p, 3, false);
      const std::uint64_t m4 =
          time_of(core::Algorithm::kMatch4, lst, p, 3, true);
      const std::uint64_t best = std::min({m1, m2, m3, m4});
      std::string winner = best == m4   ? "Match4"
                           : best == m3 ? "Match3"
                           : best == m2 ? "Match2"
                                        : "Match1";
      t.add_row({fmt::num(p), fmt::num(m1), fmt::num(m2), fmt::num(m3),
                 fmt::num(m4), winner});
    }
    t.print();
    std::cout
        << "\nShape: while n/p dominates (small p), the ranking is pure "
           "constant factors in the\nmultiplicative term (Match2's lean "
           "3-phase pipeline wins). As p grows, additive\nterms take over: "
           "Match2 pays its global sort's R + log(R*p) and falls behind "
           "Match4\n— the paper's headline separation. Match1/Match3 also "
           "look strong at extreme p\nbecause their asymptotic penalty is "
           "G(n), and G(2^20) = 5: the G(n)-vs-log^(i) n\nseparation is "
           "unbounded only far beyond feasible n (see EXPERIMENTS.md); the "
           "claims\nthat CAN materialize at this scale — Match4 > Match2 "
           "at high p, and Theorem 1's\noptimality window (E9) — do.\n";
  }
}

void BM_Match4Table(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 9);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    core::Match4Options opt;
    opt.partition_with_table = true;
    auto r = core::match4(exec, lst, opt);
    benchmark::DoNotOptimize(r.edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Match4Table)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
