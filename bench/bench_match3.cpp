// E6 (Lemma 5 / Match3): time O(n·log G(n)/p + log G(n)) via number
// crunching + concatenation + one table probe. Sweeps n, p and the
// adjustable crunch parameter k (more crunching → smaller table, more
// steps), reporting the plan each configuration resolves to.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/match1.h"
#include "core/match3.h"
#include "core/verify.h"

namespace {

using namespace llmp;

void run_tables(const bench::BenchArgs& args) {
  std::cout << "E6 — Match3: crunch/table trade-off and "
               "O(n*logG(n)/p + logG(n)) scaling\n";

  const std::size_t na = args.n_or(std::size_t{1} << 20);
  const std::size_t pa = args.p_or(4096);
  std::cout << "\n(a) the adjustable parameter k at n = " << bench::pow2(na)
            << " (log G(n) = " << itlog::log_G(na) << ")\n";
  {
    fmt::Table t({"crunch k", "gather rounds", "table cells", "depth",
                  "time_p (p=" + std::to_string(pa) + ")", "sets"});
    const std::size_t n = na;
    const auto lst = list::generators::random_list(n, 21);
    for (int k = 1; k <= core::rounds_to_constant(n); ++k) {
      core::Match3Options opt;
      opt.crunch_rounds = k;
      try {
        (void)core::plan_match3(n, opt);
      } catch (const check_error&) {
        t.add_row({fmt::num(k), "-", "table too large", "-", "-", "-"});
        continue;
      }
      pram::SeqExec exec(pa);
      const auto r = core::match3(exec, lst, opt);
      core::verify::check_maximal(lst, r.in_matching);
      t.add_row({fmt::num(k), fmt::num(r.gather_rounds),
                 fmt::num(r.table_cells), fmt::num(r.cost.depth),
                 fmt::num(r.cost.time_p), fmt::num(r.partition_sets)});
    }
    t.print();
    std::cout << "\nLarger k trades table size for extra crunch steps; "
                 "k = G(n) needs no table at all\n(Match3 degenerates to "
                 "Match1).\n";
  }

  std::cout << "\n(b) depth comparison at p = n (unlimited parallelism): "
               "Match3 vs Match1\n";
  {
    fmt::Table t({"n", "Match1 depth", "Match3 depth", "G(n)",
                  "log G(n)"});
    for (int e = 12; e <= 22; e += 2) {
      const std::size_t n = std::size_t{1} << e;
      const auto lst = list::generators::random_list(n, e);
      pram::SeqExec e1(n), e3(n);
      const auto r1 = core::match1(e1, lst);
      const auto r3 = core::match3(e3, lst);
      core::verify::check_maximal(lst, r3.in_matching);
      t.add_row({bench::pow2(n), fmt::num(r1.cost.depth),
                 fmt::num(r3.cost.depth), fmt::num(itlog::G(n)),
                 fmt::num(itlog::log_G(n))});
    }
    t.print();
    std::cout << "\nBoth depths are tiny constants at these n (G(n) <= 5), "
                 "but Match3's crunch+gather\nprefix is shorter than "
                 "Match1's full G(n) reduction — the log G(n) vs G(n) "
                 "gap.\n";
  }
}

void BM_Match3(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 5);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    auto r = core::match3(exec, lst);
    benchmark::DoNotOptimize(r.edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Match3)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
