// Micro-benchmark for ParallelExec's dispatch decision.
//
// Before the adaptive-threshold change, every step re-derived the inline/
// pooled decision from scratch: dereference the pool pointer, load
// workers(), compare against the constant threshold — per step, even on a
// zero-worker pool that can never dispatch. ParallelExec now folds the
// whole decision into one cached `threshold_` member at construction
// (zero workers => pram::kNeverParallel), so the hot path is a single
// integer compare.
//
// This bench drives millions of tiny steps (the worst case for per-step
// overhead: small nprocs, trivial bodies) through
//
//   hoisted   — ParallelExec as it ships, and
//   re-check  — a faithful replica of the old step() that re-reads
//               pool.workers() and re-evaluates the zero-worker escape
//               on every call (the replica lives in this file; the
//               production class no longer contains that code),
//
// and reports steps/second plus the checksum proving both did the same
// work. The checksum and step counts are model quantities under the bench
// gate; the wall columns and "vs_" ratios are machine noise.
//
//   --n N    virtual processors per step (default 64: inline regime)
//   --csv / --json[=FILE]   as in every bench (see bench_common.h)
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "pram/executor.h"
#include "pram/thread_pool.h"
#include "support/format.h"

namespace {

using namespace llmp;

/// Replica of the pre-hoist dispatch: the old ParallelExec::step re-read
/// pool.workers() and compared the constant threshold on every call.
class RecheckingExec {
 public:
  RecheckingExec(std::size_t processors, pram::ThreadPool& pool)
      : p_(processors), pool_(&pool) {}

  template <class F>
  void step(std::size_t nprocs, F&& body) {
    stats_.depth += 1;
    stats_.time_p += pram::ceil_div(nprocs, p_);
    stats_.work += nprocs;
    if (pool_->workers() == 0 ||
        nprocs < pram::ParallelExec::kDefaultParallelThreshold) {
      pram::DirectMem m;
      for (std::size_t v = 0; v < nprocs; ++v) body(v, m);
      return;
    }
    pool_->parallel_for(nprocs, [&body](std::size_t v) {
      pram::DirectMem m;
      body(v, m);
    });
  }

  const pram::Stats& stats() const { return stats_; }

 private:
  std::size_t p_;
  pram::ThreadPool* pool_;
  pram::Stats stats_;
};

template <class Exec>
std::uint64_t drive(Exec& exec, std::vector<std::uint64_t>& a,
                    std::uint64_t steps) {
  const std::size_t n = a.size();
  for (std::uint64_t s = 0; s < steps; ++s) {
    exec.step(n, [&](std::size_t v, auto&& m) {
      m.wr(a, v, m.rd(a, v) + v + 1);
    });
  }
  std::uint64_t checksum = 0;
  for (std::uint64_t x : a) checksum ^= x;
  return checksum;
}

int run(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t n = args.n_or(64);
  const std::uint64_t steps = (std::uint64_t{1} << 22) / (n >= 64 ? n / 64 : 1);

  std::cout << "bench_dispatch: per-step dispatch overhead, " << steps
            << " steps of n=" << n << " trivial bodies\n\n";

  fmt::Table t({"dispatch", "steps", "n", "checksum", "total ms",
                "ns_per_step", "vs_recheck"});
  double recheck_ms = 0;
  for (int variant = 0; variant < 2; ++variant) {
    pram::ThreadPool pool(0);  // the hoist's best case: nothing to dispatch
    std::vector<std::uint64_t> a(n, 0);
    std::uint64_t checksum = 0;
    double ms = 0;
    const char* name = variant == 0 ? "re-check" : "hoisted";
    if (variant == 0) {
      RecheckingExec exec(64, pool);
      ms = bench::wall_ms([&] { checksum = drive(exec, a, steps); });
      recheck_ms = ms;
      LLMP_CHECK(exec.stats().depth == steps);
    } else {
      pram::ParallelExec exec(64, pool);
      LLMP_CHECK(exec.parallel_threshold() == pram::kNeverParallel);
      ms = bench::wall_ms([&] { checksum = drive(exec, a, steps); });
      LLMP_CHECK(exec.stats().depth == steps);
    }
    const double ratio = variant == 0 ? 1.0 : (ms > 0 ? recheck_ms / ms : 0);
    t.add_row({name, fmt::num(steps), fmt::num(n), fmt::num(checksum),
               fmt::num(ms, 3),
               fmt::num(steps > 0 ? ms * 1e6 / static_cast<double>(steps) : 0,
                        2),
               fmt::num(ratio, 3)});
  }
  t.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
