// E7/E8 (Lemmas 6–7, Corollaries 1–2): the WalkDown schedules.
//
//  * WalkDown1 handles all inter-row pointers in exactly x steps of y
//    processors (Lemma 6).
//  * WalkDown2 handles the cell in row r at step r + A[r] (Lemma 7),
//    finishes by step 2x−2 (Corollary 1), and cells handled together in a
//    row share one set number (Corollary 2).
//
// The tables sweep the row count x (via the partition parameter i) and the
// list shape (blocked lists shift the inter/intra mix), reporting schedule
// lengths, per-step occupancy, and audited properties.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "core/gather.h"
#include "core/verify.h"
#include "core/walkdown.h"

namespace {

using namespace llmp;

struct Audited {
  std::size_t rows = 0, cols = 0;
  std::size_t inter = 0, intra = 0;
  std::size_t schedule_steps = 0;
  std::size_t max_handled_step = 0;
  bool lemma7_exact = true;
  bool corollary2 = true;
  std::uint64_t time_p = 0;
};

Audited audit(const list::LinkedList& lst, int rounds, std::size_t p) {
  const std::size_t n = lst.size();
  pram::SeqExec exec(p);
  std::vector<label_t> labels;
  core::init_address_labels(exec, n, labels);
  core::relabel_rounds(exec, lst, labels, rounds,
                       core::BitRule::kMostSignificant);
  std::vector<index_t> keys(n);
  for (index_t v = 0; v < n; ++v) keys[v] = static_cast<index_t>(labels[v]);
  const label_t bound = core::bound_after_rounds(n, rounds);

  const auto t0 = exec.stats();
  core::Layout2D lay = core::build_layout(exec, n, keys, bound);
  auto pred = lst.predecessors();
  std::vector<std::uint8_t> color(n, core::kNoColor);
  core::walkdown1(exec, lst, lay, pred, color);
  const auto trace = core::walkdown2(exec, lst, lay, pred, color);

  Audited a;
  a.rows = lay.rows;
  a.cols = lay.cols;
  a.schedule_steps = trace.steps;
  a.time_p = (exec.stats() - t0).time_p;
  const auto& next = lst.next_array();
  std::map<std::pair<index_t, index_t>, index_t> row_step_key;
  for (index_t v = 0; v < n; ++v) {
    if (lst.has_pointer(v)) {
      (lay.node_row[v] == lay.node_row[next[v]] ? a.intra : a.inter) += 1;
    }
    a.lemma7_exact &= trace.handled_at[v] == lay.node_row[v] + keys[v];
    a.max_handled_step = std::max<std::size_t>(a.max_handled_step,
                                               trace.handled_at[v]);
    const auto key = std::make_pair(trace.handled_at[v], lay.node_row[v]);
    const auto res = row_step_key.emplace(key, keys[v]);
    a.corollary2 &= res.first->second == keys[v];
  }
  // The combined partition must be a proper 3-coloring of the pointers.
  std::vector<label_t> plabel(n, 0);
  for (index_t v = 0; v < n; ++v)
    if (lst.has_pointer(v)) plabel[v] = color[v];
  core::verify::check_pointer_partition(lst, plabel);
  return a;
}

void run_tables(const bench::BenchArgs& args) {
  std::cout << "E7/E8 — WalkDown schedules (Lemmas 6-7, Corollaries 1-2)\n";
  const std::size_t n = args.n_or(std::size_t{1} << 18);

  std::cout << "\n(a) row-count sweep (random list, n = " << bench::pow2(n)
            << ", p = y = n/x)\n";
  {
    fmt::Table t({"partition rounds i", "rows x", "cols y", "inter ptrs",
                  "intra ptrs", "WalkDown2 steps (=2x-1)",
                  "last handled (<=2x-2)", "Lemma7 exact", "Cor.2"});
    for (int i = 1; i <= 4; ++i) {
      const auto lst = list::generators::random_list(n, 100 + i);
      const label_t bound = core::bound_after_rounds(n, i);
      const std::size_t p = (n + bound - 1) / bound;
      const Audited a = audit(lst, i, p);
      t.add_row({fmt::num(i), fmt::num(a.rows), fmt::num(a.cols),
                 fmt::num(a.inter), fmt::num(a.intra),
                 fmt::num(a.schedule_steps), fmt::num(a.max_handled_step),
                 a.lemma7_exact ? "yes" : "NO",
                 a.corollary2 ? "yes" : "NO"});
    }
    t.print();
  }

  std::cout << "\n(b) shape sweep at i = 2: blocked lists concentrate "
               "pointers within columns,\n    shifting the inter/intra "
               "mix the two phases split\n";
  {
    fmt::Table t({"shape", "inter ptrs", "intra ptrs", "time_p (p=y)",
                  "Lemma7 exact"});
    auto row = [&](const char* name, const list::LinkedList& lst) {
      const label_t bound = core::bound_after_rounds(n, 2);
      const std::size_t p = (n + bound - 1) / bound;
      const Audited a = audit(lst, 2, p);
      t.add_row({name, fmt::num(a.inter), fmt::num(a.intra),
                 fmt::num(a.time_p), a.lemma7_exact ? "yes" : "NO"});
    };
    row("random", list::generators::random_list(n, 7));
    row("identity", list::generators::identity_list(n));
    row("reverse", list::generators::reverse_list(n));
    row("blocked(16)", list::generators::blocked_list(n, 16, 7));
    row("blocked(4096)", list::generators::blocked_list(n, 4096, 7));
    t.print();
  }
}

void BM_WalkDownSchedule(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 6);
  for (auto _ : state) {
    auto a = audit(lst, 2, 64);
    benchmark::DoNotOptimize(a.time_p);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_WalkDownSchedule)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
