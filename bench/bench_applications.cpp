// E12 (§1 claim): the matching machinery drives a maximal independent
// set, a 3-coloring, and deterministic list ranking. Reports each
// application's PRAM cost against its driver's, plus the deterministic
// contraction ranking vs the Wyllie pointer-jumping baseline (O(n) vs
// O(n log n) work) and vs the randomized matching baseline.
#include <benchmark/benchmark.h>

#include "apps/euler_tour.h"
#include "apps/independent_set.h"
#include "apps/list_prefix.h"
#include "apps/list_ranking.h"
#include "apps/three_coloring.h"
#include "bench_common.h"
#include "core/random_match.h"
#include "core/verify.h"

namespace {

using namespace llmp;

void run_tables(const bench::BenchArgs& args) {
  const std::size_t p = args.p_or(256);
  std::cout << "E12 — applications: 3-coloring, MIS, list ranking\n";

  std::cout << "\n(a) coloring & MIS cost over n (p = " << p << ")\n";
  {
    fmt::Table t({"n", "3-coloring time_p", "coloring rounds",
                  "MIS time_p", "MIS size / n"});
    for (int e = 12; e <= 20; e += 2) {
      const std::size_t n = std::size_t{1} << e;
      const auto lst = list::generators::random_list(n, e * 3);
      pram::SeqExec ec(p), em(p);
      const auto col = apps::three_coloring(ec, lst);
      apps::check_coloring(lst, col.colors, 3);
      const auto mis = apps::independent_set(em, lst);
      apps::check_independent_set(lst, mis.in_set);
      t.add_row({bench::pow2(n), fmt::num(col.cost.time_p),
                 fmt::num(col.reduce_rounds), fmt::num(mis.cost.time_p),
                 fmt::num(static_cast<double>(mis.size) / n, 3)});
    }
    t.print();
  }

  std::cout << "\n(b) list ranking: contraction (deterministic, via Match4)"
               " vs Wyllie (p = 1024)\n";
  {
    fmt::Table t({"n", "contraction work/n", "Wyllie work/n",
                  "contraction rounds", "contraction time_p",
                  "Wyllie time_p"});
    for (int e = 12; e <= 20; e += 2) {
      const std::size_t n = std::size_t{1} << e;
      const auto lst = list::generators::random_list(n, e * 5);
      const auto oracle = apps::sequential_ranking(lst);
      pram::SeqExec ec(1024), ew(1024);
      const auto c = apps::contraction_ranking(ec, lst);
      const auto w = apps::wyllie_ranking(ew, lst);
      LLMP_CHECK(c.rank == oracle && w.rank == oracle);
      t.add_row({bench::pow2(n),
                 fmt::num(static_cast<double>(c.cost.work) / n, 1),
                 fmt::num(static_cast<double>(w.cost.work) / n, 1),
                 fmt::num(c.rounds), fmt::num(c.cost.time_p),
                 fmt::num(w.cost.time_p)});
    }
    t.print();
    std::cout << "\nThe shape claim is in the work/n columns: Wyllie's "
                 "grows as ~2*log2 n (it doubles\nevery size step) while "
                 "contraction's is flat — O(n) total work. The flat "
                 "constant is\nlarge (~3x the per-round matching cost, "
                 "summed over the 2/3-geometric series), so\nthe absolute "
                 "crossover sits beyond feasible n; the asymptotic gap "
                 "shows as the\ntrend, not the intercept.\n";
  }

  std::cout << "\n(b') generic list prefix (the paper's target problem "
               "family) and Euler-tour\n     tree statistics, p = 1024\n";
  {
    fmt::Table t({"n", "prefix-sum time_p", "prefix rounds",
                  "tree-stats time_p (random tree)", "tree rounds"});
    for (int e = 12; e <= 18; e += 3) {
      const std::size_t n = std::size_t{1} << e;
      const auto lst = list::generators::random_list(n, e);
      std::vector<std::uint64_t> vals(n, 3);
      pram::SeqExec ep(1024), et(1024);
      const auto pr = apps::list_prefix<apps::SumMonoid>(ep, lst, vals);
      LLMP_CHECK(pr.prefix ==
                 apps::sequential_prefix<apps::SumMonoid>(lst, vals));
      const auto tree = apps::random_tree(n, e * 7);
      const auto ts = apps::tree_statistics(et, tree);
      t.add_row({bench::pow2(n), fmt::num(pr.cost.time_p),
                 fmt::num(pr.rounds), fmt::num(ts.cost.time_p),
                 fmt::num(ts.prefix_rounds)});
    }
    t.print();
  }

  std::cout << "\n(c) deterministic vs randomized symmetry breaking "
               "(n = 2^18, p = 4096)\n";
  {
    const std::size_t n = std::size_t{1} << 18;
    fmt::Table t({"seed", "randomized rounds", "randomized time_p",
                  "Match4 time_p (deterministic)"});
    const auto lst = list::generators::random_list(n, 555);
    pram::SeqExec e4(4096);
    core::Match4Options m4;
    const auto det = core::match4(e4, lst, m4);
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      pram::SeqExec er(4096);
      const auto r = core::random_matching(er, lst, {seed});
      core::verify::check_maximal(lst, r.in_matching);
      t.add_row({fmt::num(seed), fmt::num(r.relabel_rounds),
                 fmt::num(r.cost.time_p), fmt::num(det.cost.time_p)});
    }
    t.print();
    std::cout << "\nThe randomized baseline needs Θ(log n) rounds in "
                 "expectation; the deterministic\nschedule is a fixed "
                 "constant-round pipeline — the paper's raison d'être.\n";
  }
}

void BM_ContractionRanking(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 10);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    auto r = apps::contraction_ranking(exec, lst);
    benchmark::DoNotOptimize(r.rank.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ContractionRanking)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

void BM_WyllieRanking(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 10);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    auto r = apps::wyllie_ranking(exec, lst);
    benchmark::DoNotOptimize(r.rank.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_WyllieRanking)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
