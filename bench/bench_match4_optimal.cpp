// E9 (Theorem 1): Match4 is optimal — p·T = O(T1) — using up to
// O(n / log^(i) n) processors, i an arbitrarily large constant.
//
// Sweep p at fixed n for several i; report time_p, speedup, and the
// efficiency p·T/T1 (T1 = n from the sequential baseline). The claim's
// shape: efficiency stays flat (near a constant ~i) until p crosses
// n / log^(i) n — the knee — and degrades beyond it, with larger i pushing
// the knee further right at a slightly higher plateau.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/match4.h"
#include "core/sequential.h"
#include "core/verify.h"

namespace {

using namespace llmp;

std::uint64_t run_match4(const list::LinkedList& lst, std::size_t p, int i) {
  pram::SeqExec exec(p);
  core::Match4Options opt;
  opt.i_parameter = i;
  const auto r = core::match4(exec, lst, opt);
  core::verify::check_maximal(lst, r.in_matching);
  return r.cost.time_p;
}

void run_tables(const bench::BenchArgs& args) {
  const std::size_t n = args.n_or(std::size_t{1} << 20);
  const auto lst = list::generators::random_list(n, 17);
  const double t1 = static_cast<double>(n);  // sequential walk

  std::cout << "E9 — Theorem 1: Match4 optimality window (n = "
            << bench::pow2(n) << ", T1 = n)\n";
  const std::vector<int> i_values =
      args.i != 0 ? std::vector<int>{args.i} : std::vector<int>{1, 2, 3};
  for (int i : i_values) {
    const label_t x = core::bound_after_rounds(n, i);
    const std::size_t knee = n / static_cast<std::size_t>(x);
    std::cout << "\n  i = " << i << ": rows x = " << x
              << ", optimal up to p* ~ n/x = " << knee << "\n";
    fmt::Table t({"p", "time_p", "speedup", "efficiency p*T/T1",
                  "within window"});
    for (std::size_t p = 64; p <= 4 * knee; p <<= 2) {
      const std::uint64_t tp = run_match4(lst, p, i);
      t.add_row({fmt::num(p), fmt::num(tp), fmt::num(t1 / tp, 1),
                 fmt::num(static_cast<double>(p) * tp / t1, 2),
                 p <= knee ? "yes" : "no"});
    }
    t.print();
  }
  std::cout << "\nInside the window the efficiency column is flat (p*T = "
               "O(n), constant ~ i + O(1));\npast p* = n/log^(i) n the "
               "additive Θ(x) schedule terms dominate and efficiency "
               "climbs\nwith p — Theorem 1's boundary.\n";
}

void BM_Match4(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto lst = list::generators::random_list(n, 8);
  for (auto _ : state) {
    pram::SeqExec exec(64);
    auto r = core::match4(exec, lst);
    benchmark::DoNotOptimize(r.edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Match4)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const llmp::bench::BenchArgs args = llmp::bench::parse_bench_args(argc, argv);
  run_tables(args);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
