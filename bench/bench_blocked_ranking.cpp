// Experiment: out-of-core matching/ranking through the block engine.
//
// One random list, sized to dwarf the block cache, is run through
// engine::BlockedMatcher at a sweep of cache budgets — from everything-
// resident down to 1/16 of the working set — and each run is checked
// byte-for-byte against the flat path (core::sequential_matching for the
// MatchResult, apps::sequential_ranking for the ranks). The table puts
// the cache counters (hit rate, loads, spills, swap count, bytes moved)
// next to blocked-vs-flat wall clock, so the IO-vs-compute crossover is
// directly visible: at ratio 1x the engine pays only mailbox overhead;
// past the cache cliff every round pays block swaps.
//
//   --n N    list length (default 2^17 = 131072 nodes; with 4096-node
//            blocks that is 32 blocks, so the 4-frame row runs at 8x
//            the cache budget — the acceptance geometry)
//   --csv / --json[=FILE]   as in every bench (see bench_common.h)
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/list_ranking.h"
#include "bench_common.h"
#include "core/sequential.h"
#include "engine/blocked_match.h"
#include "list/generators.h"
#include "support/format.h"

namespace llmp {
namespace {

struct Row {
  std::size_t cache_blocks = 0;
  double ratio = 0;  // working-set blocks / cache frames
  engine::EngineStats stats;
  double cold_ms = 0;  // init + first matching run
  double warm_ms = 0;  // second matching run, cache warm
  bool exact = false;
};

bool same_result(const core::MatchResult& a, const core::MatchResult& b) {
  return a.in_matching == b.in_matching && a.edges == b.edges &&
         a.cost.depth == b.cost.depth && a.cost.work == b.cost.work;
}

int run(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t n = args.n_or(std::size_t{1} << 17);

  list::LinkedList list = list::generators::random_list(n, /*seed=*/42);

  // Flat baseline: result to diff against, and the compute-only wall ms.
  core::MatchResult flat;
  const double flat_ms =
      bench::wall_ms([&] { core::sequential_matching_into(list, flat); });
  const std::vector<std::uint64_t> flat_rank = apps::sequential_ranking(list);

  engine::BlockConfig cfg;
  const std::size_t blocks =
      (n + cfg.block_nodes - 1) / cfg.block_nodes;

  // Sweep frames: all-resident, then halve until 1/16 of the working set.
  std::vector<std::size_t> frames;
  for (std::size_t c = blocks; c >= 1; c /= 2) {
    frames.push_back(c);
    if (blocks / c >= 16) break;
  }

  std::vector<Row> rows;
  for (std::size_t c : frames) {
    cfg.cache_blocks = c;
    engine::BlockedMatcher matcher;
    core::MatchResult blocked;
    Row row;
    row.cache_blocks = c;
    row.ratio = static_cast<double>(blocks) / static_cast<double>(c);
    row.cold_ms = bench::wall_ms([&] {
      Status s = matcher.init(list, cfg);
      if (s.ok()) s = matcher.matching_into(blocked);
      LLMP_CHECK(s.ok());
    });
    matcher.reset_stats();
    row.warm_ms =
        bench::wall_ms([&] { LLMP_CHECK(matcher.matching_into(blocked).ok()); });
    row.stats = matcher.stats();
    std::vector<std::uint64_t> rank;
    LLMP_CHECK(matcher.ranking_into(rank).ok());
    row.exact = same_result(flat, blocked) && rank == flat_rank;
    rows.push_back(row);
  }

  const std::size_t rec = sizeof(engine::NodeRec);
  std::printf(
      "blocked ranking: n=%zu nodes, %zu blocks of %zu (%zu B/rec), "
      "flat walk %s ms\n",
      n, blocks, cfg.block_nodes, rec, fmt::num(flat_ms, 3).c_str());

  fmt::Table t({"frames", "budget_KiB", "ratio", "hit_rate", "loads",
                "spills", "load_MiB", "spill_MiB", "swaps", "rounds",
                "posts", "batches", "warm_ms", "vs_flat", "exact"});
  for (const Row& r : rows) {
    const engine::EngineStats& e = r.stats;
    t.add_row({fmt::num(static_cast<std::uint64_t>(r.cache_blocks)),
               fmt::num(static_cast<std::uint64_t>(
                   r.cache_blocks * cfg.block_nodes * rec / 1024)),
               fmt::num(r.ratio, 1) + "x", fmt::num(e.hit_rate(), 3),
               fmt::num(e.loads), fmt::num(e.spills),
               fmt::num(static_cast<double>(e.load_bytes) / (1 << 20), 2),
               fmt::num(static_cast<double>(e.spill_bytes) / (1 << 20), 2),
               fmt::num(e.swaps), fmt::num(e.rounds), fmt::num(e.mailbox_posts),
               fmt::num(e.mailbox_batches), fmt::num(r.warm_ms, 3),
               fmt::num(flat_ms > 0 ? r.warm_ms / flat_ms : 0.0, 2) + "x",
               r.exact ? "yes" : "NO"});
  }
  t.print();

  for (const Row& r : rows) {
    if (!r.exact) {
      std::fprintf(stderr,
                   "FAIL: blocked result diverged from flat at %zu frames\n",
                   r.cache_blocks);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace llmp

int main(int argc, char** argv) { return llmp::run(argc, argv); }
