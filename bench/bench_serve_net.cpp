// bench_serve_net — multi-connection load generator for the network
// front-end (src/net): a real Server on an ephemeral loopback port, C
// client threads each pipelining batches over its own connection and its
// own tenant id.
//
//  1. Load: every connection's ledger — requests sent, ok, errors, lost
//     (no response before the connection died), duplicate and unknown
//     request ids. The correctness claim of the wire protocol is that
//     under full pipelining the reconciliation columns are EXACTLY
//     requests == ok and 0 everywhere else; the perf gate pins them.
//     Wall-clock throughput and latency percentiles ride in *_ms columns
//     (machine noise, ignored by the gate).
//
//  2. Fairness (--fairness, skipped under the gate): tenant A unlimited
//     next to tenant B squeezed through a tiny token bucket. B must see
//     kResourceExhausted on the over-quota remainder while A's
//     throughput stays within 10% of its solo run — admission control
//     must shed B's load without taxing A.
//
//   ./bench_serve_net [--requests R] [--conns C] [--n N] [--alg A]
//                     [--batch B] [--fairness] [--csv] [--json[=FILE]]
//
// Acceptance sweep (docs/NET.md): --requests 100000 --conns 4.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "llmp.h"
#include "net/client.h"
#include "net/server.h"

namespace {

using namespace llmp;

struct ConnLedger {
  std::uint32_t tenant = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t resource_exhausted = 0;  ///< subset of errors
  std::uint64_t lost = 0;                ///< no response (connection died)
  std::uint64_t duplicates = 0;
  std::uint64_t unknown_ids = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  double wall_ms = 0;
};

/// Drive `requests` pipelined requests over one fresh connection. With
/// `backoff`, the client honours kResourceExhausted the way a well-behaved
/// tenant does: a fully-rejected batch doubles a sleep (1 ms up to 32 ms)
/// before the next attempt. Without it an over-quota tenant is a rejection
/// *storm* — admission still sheds the load before any worker runs, but on
/// a one-core host the error frames themselves tax the shared IO thread,
/// which is protocol-processing physics, not a quota property.
ConnLedger drive_conn(std::uint16_t port, std::uint32_t tenant,
                      std::uint64_t requests, std::uint64_t batch,
                      const std::string& alg, std::size_t n,
                      std::size_t lists, bool backoff = false) {
  ConnLedger led;
  led.tenant = tenant;
  net::ClientOptions copt;
  copt.port = port;
  copt.tenant = tenant;
  net::Client client(copt);
  if (Status s = client.connect(); !s.ok()) {
    led.lost = requests;
    return led;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  std::uint64_t backoff_ms = 1;
  while (sent < requests) {
    const std::uint64_t take = std::min(batch, requests - sent);
    std::vector<RequestBuilder> reqs;
    reqs.reserve(take);
    for (std::uint64_t k = 0; k < take; ++k)
      reqs.push_back(RequestBuilder().algorithm(alg).generated(
          n, 9000 + (sent + k) % lists));
    const auto results = client.submit_batch(reqs);
    std::uint64_t batch_ok = 0;
    for (const auto& r : results) {
      if (r.ok()) {
        led.ok++;
        batch_ok++;
      } else if (r.status().code() == StatusCode::kUnavailable) {
        led.lost++;  // the connection died under this request
      } else {
        led.errors++;
        if (r.status().code() == StatusCode::kResourceExhausted)
          led.resource_exhausted++;
      }
    }
    sent += take;
    if (!client.connected()) break;
    if (backoff) {
      if (batch_ok == 0 && led.resource_exhausted > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 32);
      } else {
        backoff_ms = 1;
      }
    }
  }
  led.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  led.requests = sent;
  led.lost += requests - sent;  // never even submitted
  const net::ClientStats cs = client.stats();
  led.duplicates = cs.duplicates;
  led.unknown_ids = cs.unknown_ids;
  led.p50_us = cs.p50_latency_us;
  led.p99_us = cs.p99_latency_us;
  return led;
}

/// One load run: a fresh Service + Server, `conns` concurrent client
/// threads (tenant i+1 each), per-connection ledgers back.
std::vector<ConnLedger> run_load(std::size_t conns, std::uint64_t requests,
                                 std::uint64_t batch, const std::string& alg,
                                 std::size_t n, std::size_t lists,
                                 const net::AdmissionOptions& admission,
                                 std::vector<std::uint32_t> tenants = {},
                                 std::vector<bool> backoff = {}) {
  serve::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.queue_capacity = 1024;
  serve::Service svc(sopt);
  net::ServerOptions nopt;
  nopt.admission = admission;
  net::Server server(svc, nopt);
  LLMP_CHECK_MSG(server.start().ok(), "server start failed");

  const std::uint64_t per_conn = requests / conns;
  std::vector<ConnLedger> ledgers(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    const std::uint32_t tenant =
        c < tenants.size() ? tenants[c] : static_cast<std::uint32_t>(c + 1);
    const bool back = c < backoff.size() && backoff[c];
    threads.emplace_back([&, c, tenant, back] {
      ledgers[c] = drive_conn(server.port(), tenant, per_conn, batch, alg, n,
                              lists, back);
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  svc.shutdown();
  return ledgers;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t requests = 2048;
  std::size_t conns = 4;
  std::uint64_t batch = 64;
  std::string alg = "sequential";
  bool fairness = false;
  int out_argc = 1;
  for (int in = 1; in < argc; ++in) {
    auto value = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[in], name, len) != 0) return nullptr;
      if (argv[in][len] == '=') return argv[in] + len + 1;
      if (argv[in][len] == '\0' && in + 1 < argc) return argv[++in];
      return nullptr;
    };
    if (std::strcmp(argv[in], "--fairness") == 0)
      fairness = true;
    else if (const char* v = value("--requests"))
      requests = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--conns"))
      conns = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (const char* v = value("--batch"))
      batch = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--alg"))
      alg = v;
    else
      argv[out_argc++] = argv[in];
  }
  argc = out_argc;
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t n = args.n_or(1024);
  const std::size_t lists = 8;
  conns = conns == 0 ? 1 : conns;
  batch = batch == 0 ? 1 : batch;

  std::cout << "bench_serve_net: " << conns << " connection(s) x "
            << requests / conns << " pipelined '" << alg << "' requests (n="
            << n << ", batch " << batch << ") over loopback\n\n";

  // ---- Section 1: load + reconciliation ledger. ----------------------------
  std::cout << "[1] Load — every response reconciled by request id\n";
  const auto ledgers =
      run_load(conns, requests, batch, alg, n, lists, {});
  fmt::Table t1({"conn", "tenant", "requests", "ok", "errors", "lost", "dup",
                 "unknown", "wall ms", "p50 ms", "p99 ms"});
  std::uint64_t tot_req = 0, tot_ok = 0, tot_err = 0, tot_lost = 0,
                tot_dup = 0, tot_unknown = 0, worst_p99 = 0;
  double wall_ms = 0;
  for (std::size_t c = 0; c < ledgers.size(); ++c) {
    const ConnLedger& l = ledgers[c];
    t1.add_row({fmt::num(c), fmt::num(l.tenant), fmt::num(l.requests),
                fmt::num(l.ok), fmt::num(l.errors), fmt::num(l.lost),
                fmt::num(l.duplicates), fmt::num(l.unknown_ids),
                fmt::num(l.wall_ms, 1),
                fmt::num(static_cast<double>(l.p50_us) / 1000.0, 3),
                fmt::num(static_cast<double>(l.p99_us) / 1000.0, 3)});
    tot_req += l.requests;
    tot_ok += l.ok;
    tot_err += l.errors;
    tot_lost += l.lost;
    tot_dup += l.duplicates;
    tot_unknown += l.unknown_ids;
    worst_p99 = std::max(worst_p99, l.p99_us);
    wall_ms = std::max(wall_ms, l.wall_ms);
  }
  t1.print();
  const double rps = wall_ms > 0
                         ? static_cast<double>(tot_req) / (wall_ms / 1000.0)
                         : 0;
  std::cout << "total: " << tot_req << " requests, " << tot_ok << " ok, "
            << fmt::num(rps, 0) << " req/s, worst-connection p99 "
            << fmt::num(static_cast<double>(worst_p99) / 1000.0, 3)
            << " ms\n";
  const bool load_pass =
      tot_lost == 0 && tot_dup == 0 && tot_unknown == 0 && tot_ok == tot_req;

  // ---- Section 2 (opt-in): per-tenant fairness under quota. ----------------
  bool fair_pass = true;
  if (fairness) {
    std::cout << "\n[2] --fairness: tenant A unlimited vs tenant B through a"
                 " tiny token bucket\n";
    // Solo baseline: tenant A alone on the server.
    const auto solo =
        run_load(1, requests / 2, batch, alg, n, lists, {}, {1});
    const double solo_rps =
        solo[0].wall_ms > 0 ? static_cast<double>(solo[0].ok) /
                                  (solo[0].wall_ms / 1000.0)
                            : 0;
    // Paired: A unlimited, B over-quota (a bucket of 50 it drains at
    // once), B backing off on rejection like a well-behaved client.
    net::AdmissionOptions adm;
    adm.quotas[2].tokens_per_sec = 10;
    adm.quotas[2].burst = 50;
    const auto pair = run_load(2, requests, batch, alg, n, lists, adm, {1, 2},
                               {false, true});
    const ConnLedger& a = pair[0];
    const ConnLedger& b = pair[1];
    const double a_rps =
        a.wall_ms > 0 ? static_cast<double>(a.ok) / (a.wall_ms / 1000.0) : 0;
    fmt::Table t2({"tenant", "requests", "ok", "rejected quota", "wall ms"});
    t2.add_row({"A (solo)", fmt::num(solo[0].requests), fmt::num(solo[0].ok),
                "-", fmt::num(solo[0].wall_ms, 1)});
    t2.add_row({"A (paired)", fmt::num(a.requests), fmt::num(a.ok), "-",
                fmt::num(a.wall_ms, 1)});
    t2.add_row({"B (quota 10/s)", fmt::num(b.requests), fmt::num(b.ok),
                fmt::num(b.resource_exhausted), fmt::num(b.wall_ms, 1)});
    t2.print();
    const double ratio = solo_rps > 0 ? a_rps / solo_rps : 0;
    const bool b_shed = b.resource_exhausted > 0 && b.ok < b.requests;
    fair_pass = b_shed && ratio >= 0.9;
    std::cout << "A paired/solo throughput ratio: " << fmt::num(ratio, 2)
              << " (target >= 0.90); B rejected kResourceExhausted: "
              << b.resource_exhausted << "\n";
  }

  const bool pass = load_pass && fair_pass;
  std::cout << "\n" << (pass ? "PASS" : "FAIL")
            << ": zero lost/duplicated responses"
            << (fairness ? " and in-quota throughput within 10% of solo"
                         : "")
            << "\n";
  return pass ? 0 : 1;
}
