#!/usr/bin/env python3
"""Perf gate: diff bench counters against committed baselines.

The bench binaries mirror every printed table as google-benchmark JSON
under --json (see bench/bench_common.h). Most of those columns are model
quantities — PRAM steps, set counts, cache loads/spills/swaps, mailbox
traffic — fully determined by (n, seed, algorithm), so they must not
drift without an intentional change. This gate reruns each bench named
in GATE with pinned arguments and compares every deterministic counter
EXACTLY against bench/baselines/BENCH_<name>.json. Wall-clock columns
(real_time / cpu_time / *_ms / vs_*) are machine noise and are ignored.

Usage:
  scripts/bench_gate.py [--build-dir build] [--update] [name ...]
  scripts/bench_gate.py --speedup bench/baselines/PERF_<...>.json

With --update the current output replaces the baseline (commit the diff
alongside the change that explains it). Names default to every GATE
entry. Exit status: 0 clean, 1 drift or missing baseline.

--speedup switches to the wall-clock acceptance check for the fused
thread backend: it reads a committed bench_thread_backend JSON capture
(taken at n >= 1M) and requires vs_legacy >= --min-ratio on at least
--min-count workloads. Wall ratios are machine noise for the *drift*
gate, but for the capture that documents the raw-speed pass they are the
whole point — this mode is how CI keeps that evidence honest.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Bench binaries under the gate, with pinned arguments. Keep runs small:
# the gate checks counter shape, not throughput. Every entry needs a
# committed bench/baselines/BENCH_<name>.json (seed with --update).
GATE = {
    "bench_blocked_ranking": ["--n", "32768"],
    "bench_dispatch": [],
    "bench_lemma1_sets": [],
    # Loopback load generator: the reconciliation ledger (requests / ok /
    # lost / dup / unknown per connection) is exact under full pipelining;
    # only the *_ms columns are machine noise. --fairness stays off here
    # (its throughput-ratio check is a wall-clock claim, not a counter).
    "bench_serve_net": ["--requests", "2048", "--conns", "4", "--n", "1024",
                        "--alg", "sequential"],
    # Repair convergence: moves/iterations/edges are exact under SeqExec
    # with the injector's seeded damage; only the google-benchmark
    # section carries wall clock.
    "bench_stabilize": ["--n", "16384"],
    "bench_thread_backend": ["--n", "65536", "--workers", "2"],
    "bench_walkdown": ["--n", "4096"],
}

# Counter keys that carry machine-dependent time, not model quantities.
# calibrated_threshold / threshold_measured come from the adaptive
# crossover measurement (per-host), prefetch_distance from the
# environment, ns_per_step from the dispatch micro-bench's wall clock.
VOLATILE_KEYS = {"real_time", "cpu_time", "iterations", "repetitions",
                 "repetition_index", "threads", "calibrated_threshold",
                 "threshold_measured", "prefetch_distance", "ns_per_step"}


def is_volatile(key):
    return (key in VOLATILE_KEYS or key.endswith("_ms") or key == "ms"
            or " ms" in key or key.startswith("vs_"))


def deterministic_counters(entry):
    """name -> value for every exact-comparable numeric field."""
    out = {}
    for key, value in entry.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if is_volatile(key):
            continue
        out[key] = value
    return out


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {b["name"]: deterministic_counters(b)
            for b in doc.get("benchmarks", [])}


def run_bench(binary, args):
    fd, tmp = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        subprocess.run([binary, *args, "--json=" + tmp], check=True,
                       stdout=subprocess.DEVNULL)
        with open(tmp, "r", encoding="utf-8") as f:
            return f.read()
    finally:
        os.unlink(tmp)


def compare(name, baseline, current):
    """Return a list of human-readable drift lines (empty = clean)."""
    drift = []
    for row in sorted(set(baseline) | set(current)):
        if row not in current:
            drift.append(f"{name}: row '{row}' disappeared")
            continue
        if row not in baseline:
            drift.append(f"{name}: new row '{row}' (re-seed with --update)")
            continue
        base_row, cur_row = baseline[row], current[row]
        for key in sorted(set(base_row) | set(cur_row)):
            b, c = base_row.get(key), cur_row.get(key)
            if b != c:
                drift.append(f"{name}/{row}: {key} = {c} (baseline {b})")
    return drift


def check_speedup(path, min_ratio, min_count):
    """Enforce the fused-vs-legacy acceptance on a saved capture."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    ratios = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if name.startswith("algo/") and "vs_legacy" in b:
            ratios[name[len("algo/"):]] = b["vs_legacy"]
    if not ratios:
        sys.exit(f"bench_gate: {path} has no algo/... rows with vs_legacy "
                 f"(capture it with bench_thread_backend --json=...)")
    winners = sorted(w for w, r in ratios.items() if r >= min_ratio)
    for workload in sorted(ratios):
        mark = "PASS" if ratios[workload] >= min_ratio else "  --"
        print(f"bench_gate: speedup {mark} {workload} "
              f"vs_legacy={ratios[workload]:.3f}")
    if len(winners) < min_count:
        sys.exit(f"bench_gate: speedup FAIL: {len(winners)} workload(s) "
                 f">= {min_ratio}x (need {min_count}): "
                 f"{', '.join(winners) or 'none'}")
    print(f"bench_gate: speedup OK: {', '.join(winners)} >= {min_ratio}x")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--update", action="store_true",
                    help="write current output as the new baselines")
    ap.add_argument("--speedup", metavar="JSON",
                    help="check vs_legacy ratios in a saved "
                         "bench_thread_backend capture instead of diffing "
                         "baselines")
    ap.add_argument("--min-ratio", type=float, default=1.5,
                    help="required fused-vs-legacy ratio (default 1.5)")
    ap.add_argument("--min-count", type=int, default=2,
                    help="workloads that must clear it (default 2)")
    ap.add_argument("names", nargs="*", default=[],
                    help="subset of GATE entries (default: all)")
    opts = ap.parse_args()

    if opts.speedup:
        check_speedup(opts.speedup, opts.min_ratio, opts.min_count)
        return

    names = opts.names or sorted(GATE)
    unknown = [n for n in names if n not in GATE]
    if unknown:
        sys.exit(f"bench_gate: not under the gate: {', '.join(unknown)}")

    os.makedirs(opts.baseline_dir, exist_ok=True)
    all_drift = []
    for name in names:
        binary = os.path.join(opts.build_dir, "bench", name)
        if not os.path.exists(binary):
            sys.exit(f"bench_gate: missing binary {binary} (build first)")
        baseline_path = os.path.join(opts.baseline_dir,
                                     "BENCH_" + name[len("bench_"):] + ".json")
        raw = run_bench(binary, GATE[name])
        if opts.update:
            with open(baseline_path, "w", encoding="utf-8") as f:
                f.write(raw)
            print(f"bench_gate: wrote {baseline_path}")
            continue
        if not os.path.exists(baseline_path):
            all_drift.append(f"{name}: no baseline {baseline_path} "
                             f"(seed with --update)")
            continue
        fd, tmp = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(raw)
        try:
            all_drift += compare(name, load_benchmarks(baseline_path),
                                 load_benchmarks(tmp))
        finally:
            os.unlink(tmp)

    if opts.update:
        return
    if all_drift:
        for line in all_drift:
            print("bench_gate: DRIFT " + line)
        sys.exit(1)
    print(f"bench_gate: {len(names)} bench(es) match their baselines")


if __name__ == "__main__":
    main()
