#!/usr/bin/env bash
# Full local CI sweep:
#
#   1. plain Release build + the tier-1 ctest suite,
#   2. llmp_lint over the tree and llmp_prove over the registry,
#   3. llmp_mc — the bounded model checker's full gate: every serve
#      scenario clean over every bounded interleaving, and the three
#      seeded queue mutations each caught (the checker's self-test),
#   4. the tier-1 suite again under ASan+UBSan (-DLLMP_SANITIZE=...),
#   5. the threading tests (thread_pool_test, machine_test, serve_test,
#      chaos_test) under TSan — the chaos storm exercises fault
#      injection, worker restarts, retries and the watchdog with the
#      race detector watching.
#
# Usage: scripts/check.sh [--fast]   (--fast skips the sanitizer builds)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] Release build + tier-1 tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== [2/5] llmp_lint + llmp_prove =="
./build/tools/llmp_lint/llmp_lint src bench examples tools
./build/tools/llmp_prove

echo "== [3/5] llmp_mc model-check gate (incl. seeded-mutation self-test) =="
./build/tools/llmp_mc

if [[ "$FAST" == 1 ]]; then
  echo "check.sh: --fast: skipping sanitizer builds"
  exit 0
fi

echo "== [4/5] tier-1 tests under ASan+UBSan =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLLMP_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "== [5/5] threading tests under TSan =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLLMP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target thread_pool_test machine_test serve_test chaos_test
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
  -R "ThreadPool|Machine|Serve|BoundedQueue|Chaos")

echo "check.sh: all green"
