#!/usr/bin/env bash
# Full local CI sweep:
#
#   1. plain Release build + the tier-1 ctest suite,
#   1b. the fused-backend differential suite rerun with SIMD dispatch
#      forced off (LLMP_SIMD=off): the portable scalar kernels must be
#      bit-identical to the PRAM referee too, not just the AVX2 path the
#      host happens to pick,
#   2. llmp_lint over the tree and llmp_prove over the registry,
#   2b. the bench perf gate: deterministic counters (cache loads/spills,
#      mailbox traffic, set counts) diffed exactly against the committed
#      baselines in bench/baselines/ (scripts/bench_gate.py), plus the
#      raw-speed acceptance: the committed bench_thread_backend capture
#      must show fused >= 1.5x legacy on >= 2 workloads at n >= 1M,
#   2c. the network loopback smoke: llmp_serve --net.listen driven by
#      llmp_serve --net.connect over a real socket, then the
#      bench_serve_net load generator — zero lost/duplicated responses
#      under full pipelining. (--fairness is a wall-clock ratio and
#      stays out of CI like every other timing claim; quota enforcement
#      is pinned deterministically by net_server_test. The full
#      acceptance sweep is documented in docs/NET.md.)
#   3. llmp_mc — the bounded model checker's full gate: every serve
#      scenario clean over every bounded interleaving, and the three
#      seeded queue mutations each caught (the checker's self-test),
#   4. the tier-1 suite again under ASan+UBSan (-DLLMP_SANITIZE=...) —
#      including the malformed-frame fuzz decode suite in
#      net_server_test, which is the suite's home turf,
#   5. the threading tests (thread_pool_test, machine_test, serve_test,
#      chaos_test, fused_backend_test, net_server_test) under TSan — the
#      chaos storm exercises fault injection, worker restarts, retries
#      and the watchdog, and the net tests the IO-thread/worker
#      completion handoff, with the race detector watching.
#
# Usage: scripts/check.sh [--fast]   (--fast skips the sanitizer builds)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] Release build + tier-1 tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== [1b/5] fused-backend differential suite, SIMD forced off =="
LLMP_SIMD=off ./build/tests/fused_backend_test

echo "== [2/5] llmp_lint + llmp_prove =="
./build/tools/llmp_lint/llmp_lint src bench examples tools
./build/tools/llmp_prove

echo "== [2b/5] bench perf gate (deterministic counters vs baselines) =="
python3 scripts/bench_gate.py --build-dir build
python3 scripts/bench_gate.py \
  --speedup bench/baselines/PERF_thread_backend_n2097152.json

echo "== [2c/5] network loopback smoke (wire protocol over a real socket) =="
./build/tools/llmp_serve --net.listen 0 --serve.workers 2 \
  >/tmp/llmp_serve_net.$$ 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^llmp_serve: listening on \([0-9]*\).*/\1/p' \
    /tmp/llmp_serve_net.$$ 2>/dev/null || true)"
  [[ -n "${PORT:-}" ]] && break
  sleep 0.1
done
[[ -n "${PORT:-}" ]] || { echo "check.sh: server never printed its port"; \
  kill "$SERVE_PID" 2>/dev/null || true; exit 1; }
./build/tools/llmp_serve --net.connect "127.0.0.1:${PORT}" \
  --net.conns 2 --serve.requests 512 --serve.n 2048 --serve.alg sequential
kill -INT "$SERVE_PID"
wait "$SERVE_PID"
rm -f /tmp/llmp_serve_net.$$
./build/bench/bench_serve_net --requests 4096 --conns 4 --n 1024 \
  --batch 64 --alg sequential

echo "== [3/5] llmp_mc model-check gate (incl. seeded-mutation self-test) =="
./build/tools/llmp_mc

if [[ "$FAST" == 1 ]]; then
  echo "check.sh: --fast: skipping sanitizer builds"
  exit 0
fi

echo "== [4/5] tier-1 tests under ASan+UBSan =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLLMP_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")
# The scalar crunch kernels under the sanitizers too, not just AVX2.
LLMP_SIMD=off ./build-asan/tests/fused_backend_test

echo "== [4b/5] blocked-engine out-of-core smoke under ASan (8x cache) =="
# 2^17 nodes / 4096-node blocks = 32 blocks; the sweep's smallest cache
# runs at >=8x the budget, with the spill file, mailbox drain and
# eviction paths all under the sanitizer. The binary exits nonzero if
# any blocked result diverges from the flat path.
./build-asan/bench/bench_blocked_ranking --n 131072

echo "== [5/5] threading tests under TSan =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLLMP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target thread_pool_test machine_test serve_test chaos_test \
  fused_backend_test net_server_test
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
  -R "ThreadPool|Machine|Serve|BoundedQueue|Chaos|FusedBackend|Net")

echo "check.sh: all green"
